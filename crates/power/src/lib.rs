//! LPDDR4 DRAM power model — the reproduction's DRAMPower substitute
//! (paper §7.2: "we use DRAMPower to evaluate DRAM power consumption").
//!
//! Energy is accounted per command (activate, read burst, write burst,
//! all-bank refresh) plus a constant background term, with refresh energy
//! scaling linearly with chip density. Constants are calibrated so the
//! headline refresh-power facts hold: refresh approaches ~40–50 % of total
//! DRAM power for 64 Gb chips at the default 64 ms interval (paper §1,
//! Fig. 13 bottom) and becomes negligible at multi-second intervals.
//!
//! # Example
//!
//! ```
//! use reaper_power::PowerModel;
//! use reaper_dram_model::Ms;
//!
//! let model = PowerModel::lpddr4(64, 32);
//! let at_64ms = model.refresh_power_w(Some(Ms::new(64.0)));
//! let at_1024ms = model.refresh_power_w(Some(Ms::new(1024.0)));
//! assert!(at_64ms > 10.0 * at_1024ms);
//! assert_eq!(model.refresh_power_w(None), 0.0);
//! ```

// Unit tests assert exact float equality on purpose: bit-identical
// outputs are this repo's determinism contract (DESIGN.md §"Static
// analysis & determinism invariants"); `clippy.toml` has no
// in-tests knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

use reaper_dram_model::Ms;
use reaper_memsim::timing::REFRESHES_PER_WINDOW;
use reaper_memsim::CommandStats;

/// Energy per row activation+precharge pair (J).
const E_ACT_J: f64 = 1.2e-9;
/// Energy per 64-byte read burst (J).
const E_RD_J: f64 = 1.0e-9;
/// Energy per 64-byte write burst (J).
const E_WR_J: f64 = 1.1e-9;
/// Energy per all-bank refresh command for an 8 Gb chip (J); scales
/// linearly with density.
const E_REF_8GB_J: f64 = 80.0e-9;
/// Background (standby + peripheral) power per chip (W).
const P_BG_CHIP_W: f64 = 0.060;

/// Power breakdown of a DRAM module over an execution window, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Standby/background power.
    pub background_w: f64,
    /// Activation/precharge power.
    pub activate_w: f64,
    /// Read burst power.
    pub read_w: f64,
    /// Write burst power.
    pub write_w: f64,
    /// Refresh power.
    pub refresh_w: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.background_w + self.activate_w + self.read_w + self.write_w + self.refresh_w
    }

    /// Fraction of total power spent on refresh.
    pub fn refresh_fraction(&self) -> f64 {
        let t = self.total_w();
        if t == 0.0 {
            0.0
        } else {
            self.refresh_w / t
        }
    }
}

/// An LPDDR4 module power model: `chips` chips of `chip_gbit` density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerModel {
    chip_gbit: u32,
    chips: u32,
}

impl PowerModel {
    /// Creates a model for a module of `chips` × `chip_gbit` chips (the
    /// paper's §7 modules are 32 chips of 8–64 Gb).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn lpddr4(chip_gbit: u32, chips: u32) -> Self {
        assert!(chip_gbit > 0, "chip density must be nonzero");
        assert!(chips > 0, "module needs chips");
        Self { chip_gbit, chips }
    }

    /// Chip density in gigabits.
    pub fn chip_gbit(&self) -> u32 {
        self.chip_gbit
    }

    /// Module capacity in bytes.
    pub fn module_bytes(&self) -> u64 {
        self.chips as u64 * ((self.chip_gbit as u64) << 30) / 8
    }

    /// Energy of one all-bank refresh command across the module (J).
    pub fn refresh_energy_j(&self) -> f64 {
        E_REF_8GB_J * (self.chip_gbit as f64 / 8.0) * self.chips as f64
    }

    /// Background power of the module (W).
    pub fn background_power_w(&self) -> f64 {
        P_BG_CHIP_W * self.chips as f64
    }

    /// Steady-state refresh power at a refresh window (`None` = refresh
    /// disabled): `E_ref · 8192 / window`.
    pub fn refresh_power_w(&self, window: Option<Ms>) -> f64 {
        match window {
            None => 0.0,
            Some(w) => {
                assert!(w.is_positive(), "refresh window must be positive");
                self.refresh_energy_j() * REFRESHES_PER_WINDOW as f64 / w.as_secs()
            }
        }
    }

    /// Full power breakdown from simulated command counts over
    /// `elapsed_secs` of execution.
    ///
    /// # Panics
    /// Panics if `elapsed_secs` is not positive.
    pub fn breakdown(&self, stats: &CommandStats, elapsed_secs: f64) -> PowerBreakdown {
        assert!(elapsed_secs > 0.0, "elapsed time must be positive");
        // The memory-system simulator models one chip-width channel; scale
        // command energy to the module (all chips in a rank act together on
        // a module-wide access in this organization).
        PowerBreakdown {
            background_w: self.background_power_w(),
            activate_w: stats.activates as f64 * E_ACT_J * self.chips as f64 / elapsed_secs,
            read_w: stats.reads as f64 * E_RD_J * self.chips as f64 / elapsed_secs,
            write_w: stats.writes as f64 * E_WR_J * self.chips as f64 / elapsed_secs,
            refresh_w: (stats.refreshes as f64
                + stats.per_bank_refreshes as f64 / 8.0)
                * self.refresh_energy_j()
                / elapsed_secs,
        }
    }

    /// Energy of one profiling round (Fig. 12's numerator): each of
    /// `patterns × iterations` passes writes the whole module and reads it
    /// back (row activations plus bursts); refresh is disabled during the
    /// retention wait, so only pass energy counts.
    pub fn profiling_round_energy_j(&self, patterns: u32, iterations: u32) -> f64 {
        let bursts_per_pass = self.module_bytes() as f64 / 64.0;
        let rows_per_pass = self.module_bytes() as f64 / 2048.0; // 2KB rows
        let pass_energy =
            rows_per_pass * E_ACT_J * 2.0 + bursts_per_pass * (E_RD_J + E_WR_J);
        pass_energy * patterns as f64 * iterations as f64
    }

    /// Average added power from online profiling every `online_interval`
    /// (Fig. 12's y-axis): round energy divided by the online interval.
    ///
    /// # Panics
    /// Panics if `online_interval` is not positive.
    pub fn profiling_power_w(
        &self,
        patterns: u32,
        iterations: u32,
        online_interval: Ms,
    ) -> f64 {
        assert!(online_interval.is_positive(), "online interval must be positive");
        self.profiling_round_energy_j(patterns, iterations) / online_interval.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_power_scales_with_density_and_interval() {
        let small = PowerModel::lpddr4(8, 32);
        let large = PowerModel::lpddr4(64, 32);
        let w = Some(Ms::new(64.0));
        assert!((large.refresh_power_w(w) / small.refresh_power_w(w) - 8.0).abs() < 1e-9);
        assert!(
            (small.refresh_power_w(Some(Ms::new(64.0)))
                / small.refresh_power_w(Some(Ms::new(1024.0)))
                - 16.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn refresh_is_major_fraction_for_64gb_at_default() {
        // Paper §1: refresh consumes up to ~50% of DRAM power; Fig. 13:
        // eliminating refresh on 64Gb chips saves ~41% on average.
        let model = PowerModel::lpddr4(64, 32);
        let stats = CommandStats {
            activates: 1000,
            reads: 4000,
            writes: 1000,
            refreshes: 128, // 1ms at 7.8125us tREFI
            per_bank_refreshes: 0,
            row_hits: 4000,
            row_misses: 1000,
        };
        let b = model.breakdown(&stats, 1e-3);
        let frac = b.refresh_fraction();
        assert!((0.30..0.60).contains(&frac), "refresh fraction {frac}");
    }

    #[test]
    fn refresh_is_minor_for_8gb() {
        let model = PowerModel::lpddr4(8, 32);
        let stats = CommandStats {
            activates: 1000,
            reads: 4000,
            writes: 1000,
            refreshes: 128,
            per_bank_refreshes: 0,
            row_hits: 0,
            row_misses: 0,
        };
        let frac = model.breakdown(&stats, 1e-3).refresh_fraction();
        assert!(frac < 0.25, "refresh fraction {frac}");
    }

    #[test]
    fn breakdown_total_is_sum() {
        let model = PowerModel::lpddr4(16, 32);
        let stats = CommandStats {
            activates: 10,
            reads: 20,
            writes: 5,
            refreshes: 2,
            per_bank_refreshes: 0,
            row_hits: 15,
            row_misses: 10,
        };
        let b = model.breakdown(&stats, 1e-4);
        let sum = b.background_w + b.activate_w + b.read_w + b.write_w + b.refresh_w;
        assert!((b.total_w() - sum).abs() < 1e-12);
    }

    #[test]
    fn zero_stats_is_background_only() {
        let model = PowerModel::lpddr4(8, 32);
        let b = model.breakdown(&CommandStats::default(), 1.0);
        assert_eq!(b.total_w(), model.background_power_w());
        assert_eq!(b.refresh_fraction(), 0.0);
    }

    #[test]
    fn profiling_power_scales_as_fig12() {
        // Fig. 12: profiling power grows with chip size and shrinks with
        // the online profiling interval.
        let small = PowerModel::lpddr4(8, 32);
        let large = PowerModel::lpddr4(64, 32);
        let p_small = small.profiling_power_w(6, 16, Ms::from_hours(4.0));
        let p_large = large.profiling_power_w(6, 16, Ms::from_hours(4.0));
        assert!((p_large / p_small - 8.0).abs() < 1e-9);
        let p_rare = large.profiling_power_w(6, 16, Ms::from_hours(64.0));
        assert!((p_large / p_rare - 16.0).abs() < 1e-9);
    }

    #[test]
    fn profiling_power_is_small_vs_module_power() {
        // §7.3.2 observation 4: profiling adds negligible DRAM power.
        let model = PowerModel::lpddr4(64, 32);
        let p = model.profiling_power_w(6, 16, Ms::from_hours(4.0));
        assert!(
            p < 0.05 * model.background_power_w(),
            "profiling {p} W vs background {} W",
            model.background_power_w()
        );
    }

    #[test]
    fn fewer_iterations_less_energy() {
        // REAPER's 2.5x fewer iterations translate directly to energy.
        let model = PowerModel::lpddr4(8, 32);
        let brute = model.profiling_round_energy_j(6, 16);
        let reaper = model.profiling_round_energy_j(6, 6);
        assert!(reaper < brute / 2.0);
    }

    #[test]
    fn module_bytes_math() {
        assert_eq!(PowerModel::lpddr4(8, 32).module_bytes(), 32 << 30);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn breakdown_rejects_zero_time() {
        PowerModel::lpddr4(8, 32).breakdown(&CommandStats::default(), 0.0);
    }
}
