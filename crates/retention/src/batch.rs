//! Bit-plane batch trial kernel: up to 64 rounds per cell per pass.
//!
//! A compiled [`TrialPlan`] round is a linear scan that opens one hash
//! lane per in-band cell and performs one compare. Running R rounds
//! round-major re-streams the `prob_idx`/threshold lanes from memory R
//! times and pays the fan-out/merge overhead R times. This module flips
//! the loop nest to **cell-major**: each in-band lane is visited once per
//! batch — one index load, one threshold load — and the inner loop walks
//! the (up to 64) round nonces, recording outcomes as one `u64`
//! **bit-plane** per cell, bit *r* set iff the cell failed in round *r*.
//! The planes are then expanded back into per-round failure vectors with
//! popcount/trailing-zeros iteration (the gsim2 word-packed SoA trick).
//!
//! Two further per-draw savings fall out of the inversion:
//!
//! * **Shared hash prefixes.** Every lane key is
//!   `[stream_base, TRIAL_DOMAIN, nonce, index]`. The
//!   `(stream_base, TRIAL_DOMAIN)` prefix is hashed once per batch and
//!   each `nonce` extension once per batch (not once per cell) via
//!   [`StreamPrefix`]; the per-(cell, round) cost drops to one `push` +
//!   finalize (~7 multiplies) from the ~17 of hashing the full tuple.
//! * **Integer-domain compares.** The plan carries `prob_thr_u[i] =
//!   ceil(thr · 2⁵³)` ([`u53_threshold`]), so the kernel compares the raw
//!   53-bit draw `next_u64() >> 11` against it — exactly equivalent to
//!   `next_f64() < thr` (see the proof on [`u53_threshold`]) without the
//!   int→float convert in the hottest loop.
//!
//! # Determinism contract
//!
//! Bit-identical to the scalar engine at any thread count and any batch
//! size: every (cell, round) pair opens the same hash lane and makes the
//! same draws in the same order (VRT observation first, failure draw only
//! in band). VRT chains are replayed sequentially per cell across the
//! batch carrying the advanced state — and since every round in a batch
//! shares one wall-clock `now_ms`, [`TwoStateVrt::observe_at`] advances
//! the chain on at most the first observation (dt > 0) and is a draw-
//! consuming no-op for the rest, exactly as the round-major replay would
//! behave. See DESIGN.md §"Compiled trial plans".

use std::sync::Arc;

use reaper_exec::num;
use reaper_exec::rng::StreamPrefix;

use crate::chip::{PAR_MIN_CELLS, TRIAL_DOMAIN};
use crate::plan::{PlanLanes, TrialCtx, TrialPlan, CERTAIN_FAIL, CERTAIN_PASS};
use crate::vrt::TwoStateVrt;

/// Maximum rounds per batch: one bit per round in a `u64` plane.
pub const MAX_BATCH_ROUNDS: usize = 64;

/// `2⁵³` as an (exactly representable) `f64`.
const U53_SCALE: f64 = 9_007_199_254_740_992.0;

/// Rescales an in-band probability threshold to the integer domain of the
/// generator's 53-bit draws: `(next_u64() >> 11) < u53_threshold(thr)` iff
/// `next_f64() < thr`, exactly.
///
/// Proof: `next_f64()` is `k · 2⁻⁵³` for the 53-bit integer draw `k`, and
/// the product is exact (k has ≤ 53 significant bits). So
/// `next_f64() < thr  ⇔  k < thr · 2⁵³  ⇔  k < ceil(thr · 2⁵³)` — the
/// last step because `k` is an integer (when `thr · 2⁵³` is itself an
/// integer the ceil is the identity and both strict compares agree).
/// In-band thresholds are `phi(z)` with `|z| ≤ Z_CUTOFF`, hence strictly
/// inside `(0, 1)`: the scaled value lies in `(0, 2⁵³]` and the cast is
/// exact.
pub(crate) fn u53_threshold(thr: f64) -> u64 {
    debug_assert!(
        thr > 0.0 && thr < 1.0,
        "u53_threshold is for in-band thresholds only, got {thr}"
    );
    let scaled = (thr * U53_SCALE).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        // lint: allow(lossy-cast) ceil of a value in (0, 2^53] is integral, fits u64 exactly
        scaled as u64
    }
}

/// The kernel's output for one batch of round nonces.
pub(crate) struct BatchRounds {
    /// Per-round failing cell indices, `rounds.len() == nonces.len()`, in
    /// nonce order. Each round is sorted ascending and duplicate-free
    /// (lane classes partition the window), so callers can build a
    /// [`crate::chip::TrialOutcome`] without re-sorting.
    pub(crate) rounds: Vec<Vec<u64>>,
    /// Final VRT chain states after the whole batch, one per plan VRT
    /// lane — the union of what per-round merges would have produced,
    /// since later observations overwrite earlier ones slot-wise.
    pub(crate) vrt_updates: Vec<(u32, TwoStateVrt)>,
}

impl TrialPlan {
    /// Evaluates one round per nonce in a single cell-major pass.
    ///
    /// `ctx.nonce` is ignored (each lane key takes its nonce from
    /// `nonces`); all rounds share `ctx.now_ms`. Outcomes are
    /// bit-identical to calling [`TrialPlan::run_round`] once per nonce
    /// in order, merging each round's VRT updates into `base_vrt`
    /// between calls — except each round comes back already sorted
    /// ascending (`run_round` emits lane order and leaves sorting to
    /// `TrialOutcome`).
    ///
    /// # Panics
    /// Panics if `nonces` is empty or longer than [`MAX_BATCH_ROUNDS`].
    pub(crate) fn run_rounds(
        &mut self,
        base_vrt: &[TwoStateVrt],
        ctx: &TrialCtx,
        nonces: &[u64],
    ) -> BatchRounds {
        let k = nonces.len();
        assert!(
            (1..=MAX_BATCH_ROUNDS).contains(&k),
            "batch size must be in 1..={MAX_BATCH_ROUNDS}, got {k}"
        );
        debug_assert!(self.lanes_consistent(), "plan SoA lanes out of sync");

        // Hash the shared tuple prefix once per batch and each nonce
        // extension once per batch.
        let trial_prefix = StreamPrefix::root()
            .push(ctx.stream_base)
            .push(TRIAL_DOMAIN);
        let nonce_prefixes: Arc<[StreamPrefix]> =
            nonces.iter().map(|&nonce| trial_prefix.push(nonce)).collect();

        // In-band non-VRT lanes, cell-major. Parallel fan-out covers
        // cells × all k rounds at once: each chunk is k× the work of a
        // single-round chunk, so the pool's dispatch overhead amortizes.
        let lanes = Arc::clone(&self.lanes);
        let n = lanes.prob_idx.len();
        let planes: Vec<u64> = if n < PAR_MIN_CELLS || reaper_exec::thread_count() <= 1 {
            prob_planes(&lanes, &nonce_prefixes, 0..n)
        } else {
            let shared = Arc::clone(&lanes);
            let prefixes = Arc::clone(&nonce_prefixes);
            let chunks = reaper_exec::par_index_map_pooled(
                n,
                256,
                Arc::new(move |range: core::ops::Range<usize>| {
                    prob_planes(&shared, &prefixes, range)
                }),
            );
            let mut all = Vec::with_capacity(n);
            for chunk in chunks {
                all.extend(chunk);
            }
            all
        };

        // VRT lanes: sequential per-cell replay across the batch,
        // carrying the chain state from round to round. Draw order per
        // (cell, round) matches run_round: observation first, then the
        // failure draw only for in-band thresholds.
        let mut vrt_planes = Vec::with_capacity(lanes.vrt_slot.len());
        let mut vrt_updates = Vec::with_capacity(lanes.vrt_slot.len());
        for ((slot, idx), pair) in lanes
            .vrt_slot
            .iter()
            .zip(&lanes.vrt_idx)
            .zip(lanes.vrt_thr.chunks_exact(2))
        {
            let [thr_high, thr_low]: [f64; 2] = pair
                .try_into()
                .expect("invariant: vrt_thr holds two thresholds per cell");
            let mut vrt = *base_vrt
                .get(num::idx(*slot))
                .expect("invariant: plan VRT slots are positions pushed into base_vrt");
            let mut plane = 0u64;
            for (r, np) in nonce_prefixes.iter().enumerate() {
                let mut lane = np.push(*idx).stream();
                let in_low = vrt.observe_at(ctx.now_ms, lane.next_f64());
                let thr = if in_low { thr_low } else { thr_high };
                // Certain-fail consumes no uniform, matching the scalar
                // draw count; only in-band thresholds draw.
                let fails = if thr.to_bits() == CERTAIN_FAIL.to_bits() {
                    true
                } else {
                    thr.to_bits() != CERTAIN_PASS.to_bits() && lane.next_f64() < thr
                };
                plane |= u64::from(fails) << r;
            }
            vrt_updates.push((*slot, vrt));
            vrt_planes.push(plane);
        }

        // Expand bit-planes into per-round failure vectors, sorted. The
        // lane classes partition the window (a cell appears in exactly
        // one of certain / prob / VRT), so gathering every failing lane
        // into one `(index, plane)` array and sorting it *once per batch*
        // makes each round's expansion emit indices in ascending order —
        // 64 sorted rounds for the price of one ~n·log n sort, instead of
        // the per-round `sort_unstable` the round-major path pays.
        let full_mask = if k == MAX_BATCH_ROUNDS {
            u64::MAX
        } else {
            (1u64 << k) - 1
        };
        let mut entries: Vec<(u64, u64)> =
            Vec::with_capacity(lanes.certain.len() + planes.len() + vrt_planes.len());
        entries.extend(lanes.certain.iter().map(|&idx| (idx, full_mask)));
        entries.extend(
            lanes
                .prob_idx
                .iter()
                .zip(&planes)
                .filter(|&(_, &plane)| plane != 0)
                .map(|(&idx, &plane)| (idx, plane)),
        );
        entries.extend(
            lanes
                .vrt_idx
                .iter()
                .zip(&vrt_planes)
                .filter(|&(_, &plane)| plane != 0)
                .map(|(&idx, &plane)| (idx, plane)),
        );
        entries.sort_unstable_by_key(|&(idx, _)| idx);

        // Size each round's vector from the mean failures per round (one
        // popcount per entry — a per-bit exact count would cost as much
        // as the expansion itself). Rounds are near-iid draws, so mean
        // plus a 1/8 margin almost always avoids regrowth, and a rare
        // outlier round just pays one amortized `Vec` doubling.
        let total: usize = entries
            .iter()
            .map(|&(_, plane)| num::idx(plane.count_ones()))
            .sum();
        let per_round = total / k + total / (k * 8) + 8;
        let mut rounds: Vec<Vec<u64>> =
            (0..k).map(|_| Vec::with_capacity(per_round)).collect();
        for &(idx, plane) in &entries {
            expand_plane(plane, idx, &mut rounds);
        }

        if let Some(last) = rounds.last() {
            self.note_round_failures(last.len());
        }
        BatchRounds {
            rounds,
            vrt_updates,
        }
    }
}

/// The cell-major hot loop over in-band non-VRT lane range `range`: one
/// bit-plane per lane, one 53-bit draw and one integer compare per
/// (cell, round). Free function so the inline and pooled dispatch paths
/// share one body.
fn prob_planes(
    lanes: &PlanLanes,
    nonce_prefixes: &[StreamPrefix],
    range: core::ops::Range<usize>,
) -> Vec<u64> {
    let idx_lane = lanes
        .prob_idx
        .get(range.clone())
        .expect("invariant: scan ranges are within [0, len)");
    let thr_lane = lanes
        .prob_thr_u
        .get(range)
        .expect("invariant: prob lanes are index-aligned");
    let mut out = Vec::with_capacity(idx_lane.len());
    for (&idx, &thr_u) in idx_lane.iter().zip(thr_lane) {
        let mut plane = 0u64;
        // Four independent hash chains per step: one chain's ~7 serial
        // multiplies leave the multiplier idle most cycles, so the loop
        // is latency-bound without explicit interleaving.
        let mut chunks = nonce_prefixes.chunks_exact(4);
        let mut r = 0usize;
        for quad in chunks.by_ref() {
            let &[p0, p1, p2, p3] = quad else {
                unreachable!("chunks_exact(4) yields 4-element slices")
            };
            let d0 = p0.push(idx).stream().next_u64() >> 11;
            let d1 = p1.push(idx).stream().next_u64() >> 11;
            let d2 = p2.push(idx).stream().next_u64() >> 11;
            let d3 = p3.push(idx).stream().next_u64() >> 11;
            plane |= u64::from(d0 < thr_u) << r;
            plane |= u64::from(d1 < thr_u) << (r + 1);
            plane |= u64::from(d2 < thr_u) << (r + 2);
            plane |= u64::from(d3 < thr_u) << (r + 3);
            r += 4;
        }
        for np in chunks.remainder() {
            let draw = np.push(idx).stream().next_u64() >> 11;
            plane |= u64::from(draw < thr_u) << r;
            r += 1;
        }
        out.push(plane);
    }
    out
}

/// Scatters one cell's bit-plane into the per-round failure vectors.
fn expand_plane(plane: u64, idx: u64, rounds: &mut [Vec<u64>]) {
    let mut bits = plane;
    while bits != 0 {
        let r = num::idx(bits.trailing_zeros());
        rounds
            .get_mut(r)
            .expect("invariant: plane bits sit below the batch size")
            .push(idx);
        bits &= bits - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::SimulatedChip;
    use crate::config::RetentionConfig;
    use crate::plan::PatternLowering;
    use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
    use reaper_exec::rng::stream;

    #[test]
    fn u53_threshold_matches_float_compare_exactly() {
        use reaper_analysis::special::phi;
        let thresholds = [
            phi(-4.0),
            phi(-2.5),
            phi(-1e-9),
            phi(0.0),
            phi(1.0),
            phi(3.999),
            0.25,
            0.5,
            0.5 + f64::EPSILON,
            1.0 - f64::EPSILON,
            f64::EPSILON,
        ];
        for thr in thresholds {
            let thr_u = u53_threshold(thr);
            // Boundary draws around the cutover, where an off-by-one
            // would flip the outcome.
            let hi = (thr_u + 2).min((1u64 << 53) - 1);
            for k in thr_u.saturating_sub(2)..=hi {
                let float_side = (k as f64) * (1.0 / U53_SCALE) < thr;
                assert_eq!(k < thr_u, float_side, "thr {thr} k {k}");
            }
        }
        // Random draws through the real generator: the integer compare
        // and next_f64 must agree on every one.
        let mut rng = stream(&[0xBA7C4]);
        for thr in thresholds {
            let thr_u = u53_threshold(thr);
            for _ in 0..200 {
                let mut probe = rng;
                let k = rng.next_u64() >> 11;
                assert_eq!(k < thr_u, probe.next_f64() < thr, "thr {thr} k {k}");
            }
        }
    }

    fn quick_chip() -> SimulatedChip {
        let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16);
        SimulatedChip::new(cfg, 0xBC417)
    }

    /// `run_round` emits lane order; the kernel emits sorted rounds.
    /// Normalize the former for comparison.
    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v.dedup();
        v
    }

    fn compile_pair(chip: &SimulatedChip) -> (TrialPlan, TrialCtx) {
        let pattern = DataPattern::checkerboard();
        let interval = Ms::new(1024.0);
        let temp = Celsius::new(60.0);
        let low = PatternLowering::build(chip.cells(), pattern, chip.geometry());
        let plan = TrialPlan::compile(
            chip.config(),
            chip.cells(),
            chip.sort_keys_for_tests(),
            Some(&low),
            pattern,
            interval,
            temp,
        );
        let ctx = TrialCtx {
            t_secs: interval.as_secs(),
            ms_scale: chip.config().mu_temp_scale(temp),
            ss_scale: chip.config().sigma_temp_scale(temp),
            stream_base: 0xFEED_F00D,
            nonce: 0,
            now_ms: 250.0,
            low_mu_factor: chip.config().vrt_low_mu_factor,
        };
        (plan, ctx)
    }

    #[test]
    fn batch_matches_sequential_round_replay() {
        let chip = quick_chip();
        let (mut plan_batch, ctx) = compile_pair(&chip);
        let mut plan_seq = plan_batch.clone();

        let nonces: Vec<u64> = (40..47).collect();
        let batch = plan_batch.run_rounds(chip.base_vrt_for_tests(), &ctx, &nonces);
        assert_eq!(batch.rounds.len(), nonces.len());

        let mut base_vrt = chip.base_vrt_for_tests().to_vec();
        for (round, nonce) in batch.rounds.iter().zip(&nonces) {
            let round_ctx = TrialCtx {
                nonce: *nonce,
                ..ctx
            };
            let (fails, updates) = plan_seq.run_round(&base_vrt, &round_ctx);
            assert_eq!(round, &sorted(fails), "nonce {nonce}");
            for (slot, state) in updates {
                *base_vrt.get_mut(num::idx(slot)).expect("slot") = state;
            }
        }
        // Final chain states match the merged sequential replay.
        for (slot, state) in &batch.vrt_updates {
            assert_eq!(base_vrt.get(num::idx(*slot)).expect("slot"), state);
        }
        assert_eq!(
            batch.vrt_updates.len(),
            plan_batch.lanes.vrt_slot.len(),
            "one final state per VRT lane"
        );
    }

    #[test]
    fn batch_of_one_equals_run_round() {
        let chip = quick_chip();
        let (mut plan_batch, ctx) = compile_pair(&chip);
        let mut plan_seq = plan_batch.clone();
        let round_ctx = TrialCtx { nonce: 99, ..ctx };
        let (fails, updates) = plan_seq.run_round(chip.base_vrt_for_tests(), &round_ctx);
        let mut batch = plan_batch.run_rounds(chip.base_vrt_for_tests(), &ctx, &[99]);
        assert_eq!(batch.rounds.len(), 1);
        assert_eq!(batch.rounds.pop().expect("one round"), sorted(fails));
        assert_eq!(batch.vrt_updates, updates);
    }

    #[test]
    fn full_width_batch_covers_all_64_bits() {
        let chip = quick_chip();
        let (mut plan_batch, ctx) = compile_pair(&chip);
        let mut plan_seq = plan_batch.clone();
        let nonces: Vec<u64> = (1000..1064).collect();
        let batch = plan_batch.run_rounds(chip.base_vrt_for_tests(), &ctx, &nonces);
        assert_eq!(batch.rounds.len(), MAX_BATCH_ROUNDS);
        // Spot-check the last round (bit 63) against a sequential replay.
        let mut base_vrt = chip.base_vrt_for_tests().to_vec();
        let mut last = Vec::new();
        for nonce in &nonces {
            let round_ctx = TrialCtx {
                nonce: *nonce,
                ..ctx
            };
            let (fails, updates) = plan_seq.run_round(&base_vrt, &round_ctx);
            for (slot, state) in updates {
                *base_vrt.get_mut(num::idx(slot)).expect("slot") = state;
            }
            last = fails;
        }
        assert_eq!(batch.rounds.last().expect("64 rounds"), &sorted(last));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn rejects_oversized_batches() {
        let chip = quick_chip();
        let (mut plan, ctx) = compile_pair(&chip);
        let nonces: Vec<u64> = (0..65).collect();
        let _ = plan.run_rounds(chip.base_vrt_for_tests(), &ctx, &nonces);
    }
}

