//! The weak-cell model: per-cell retention parameters and data-pattern
//! dependence.
//!
//! A *weak cell* is a cell whose base retention μ (at the reference
//! temperature) is small enough to matter for any refresh interval the
//! experiments sweep. Strong cells — the overwhelming majority — never fail
//! in-range and are not materialized.

use reaper_dram_model::{ChipGeometry, DataPattern};
use reaper_analysis::special::phi;
use reaper_exec::num;

/// One weak cell's retention phenotype.
///
/// The failure probability of the cell on a retention trial of `t` seconds
/// is `Φ((t − μ_eff)/σ_eff)` (paper §5.5, Fig. 6a), where the effective
/// parameters fold in temperature scaling, data-pattern coupling, and VRT
/// state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakCell {
    /// Dense linear cell index within the chip geometry.
    pub index: u64,
    /// Mean of the failure CDF in seconds, at the reference temperature,
    /// unstressed.
    pub mu0: f32,
    /// Standard deviation of the failure CDF in seconds at the reference
    /// temperature (lognormally distributed across cells, Fig. 6b).
    pub sigma0: f32,
    /// The stored value under which the cell leaks toward failure
    /// (true-cell vs. anti-cell orientation). Storing the opposite value
    /// cannot produce a retention failure in this cell.
    pub vulnerable_bit: bool,
    /// Fractional μ reduction when the cell's worst-case aggressor
    /// neighborhood is stored (data-pattern dependence, §2.3.2).
    pub dpd_strength: f32,
    /// 4-bit aggressor signature: the absolute data values of the
    /// (north, south, west, east) neighbors that maximally stress this cell.
    /// Bit i set means neighbor i stresses the cell when it stores 1.
    pub dpd_signature: u8,
    /// Index into the chip's base-VRT table if this cell exhibits VRT.
    pub vrt_index: Option<u32>,
}

impl WeakCell {
    /// Number of the four neighbors (0..=4) whose stored value under
    /// `pattern` matches this cell's aggressor signature. The quantized
    /// form of [`WeakCell::stress_under`]; the trial-plan engine packs this
    /// into a one-byte DPD lane.
    pub fn stress_matches(&self, pattern: DataPattern, geometry: ChipGeometry) -> u8 {
        let row_bits = u64::from(geometry.row_bits());
        let total_rows = geometry.total_rows();
        let row = self.index / row_bits;
        let col = num::u64_to_u32(self.index % row_bits);

        let north = pattern.bit_at((row + total_rows - 1) % total_rows, col);
        let south = pattern.bit_at((row + 1) % total_rows, col);
        let west = pattern.bit_at(row, (col + geometry.row_bits() - 1) % geometry.row_bits());
        let east = pattern.bit_at(row, (col + 1) % geometry.row_bits());

        let neighbors = [north, south, west, east];
        let matches = neighbors
            .iter()
            .enumerate()
            .filter(|&(i, &bit)| bit == ((self.dpd_signature >> i) & 1 == 1))
            .count();
        u8::try_from(matches).expect("invariant: at most four neighbors can match")
    }

    /// DPD stress fraction in `[0, 1]` for this cell under `pattern`:
    /// the fraction of the four neighbors whose stored value matches the
    /// cell's aggressor signature.
    pub fn stress_under(&self, pattern: DataPattern, geometry: ChipGeometry) -> f64 {
        f64::from(self.stress_matches(pattern, geometry)) / 4.0
    }

    /// The bit this cell stores under `pattern`.
    pub fn stored_bit(&self, pattern: DataPattern, geometry: ChipGeometry) -> bool {
        let row_bits = u64::from(geometry.row_bits());
        pattern.bit_at(self.index / row_bits, num::u64_to_u32(self.index % row_bits))
    }

    /// Effective CDF mean in seconds given a temperature μ-scale factor, a
    /// stress fraction, and an optional VRT low-state μ factor.
    pub fn effective_mu(&self, mu_temp_scale: f64, stress: f64, vrt_factor: f64) -> f64 {
        self.mu0 as f64 * mu_temp_scale * (1.0 - self.dpd_strength as f64 * stress) * vrt_factor
    }

    /// Failure probability on a single retention trial of `t_secs` seconds.
    ///
    /// `mu_temp_scale`/`sigma_temp_scale` come from
    /// [`RetentionConfig::mu_temp_scale`]/[`sigma_temp_scale`];
    /// `stress ∈ [0,1]` is the DPD stress fraction; `vrt_factor` is 1.0 or
    /// the low-state μ factor.
    ///
    /// [`RetentionConfig::mu_temp_scale`]: crate::RetentionConfig::mu_temp_scale
    /// [`sigma_temp_scale`]: crate::RetentionConfig::sigma_temp_scale
    pub fn fail_probability(
        &self,
        t_secs: f64,
        mu_temp_scale: f64,
        sigma_temp_scale: f64,
        stress: f64,
        vrt_factor: f64,
    ) -> f64 {
        let mu = self.effective_mu(mu_temp_scale, stress, vrt_factor);
        let sigma = self.sigma0 as f64 * sigma_temp_scale;
        phi((t_secs - mu) / sigma)
    }

    /// Worst-case single-trial failure probability at the given temperature
    /// scales: vulnerable value stored, full aggressor stress, VRT low state
    /// if the cell has one (`vrt_factor` should then be the low-μ factor).
    pub fn worst_case_fail_probability(
        &self,
        t_secs: f64,
        mu_temp_scale: f64,
        sigma_temp_scale: f64,
        vrt_factor: f64,
    ) -> f64 {
        self.fail_probability(t_secs, mu_temp_scale, sigma_temp_scale, 1.0, vrt_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cell(mu0: f32) -> WeakCell {
        WeakCell {
            index: 12_345,
            mu0,
            sigma0: 0.1,
            vulnerable_bit: true,
            dpd_strength: 0.2,
            dpd_signature: 0b1111,
            vrt_index: None,
        }
    }

    #[test]
    fn fail_probability_is_normal_cdf() {
        let c = test_cell(2.0);
        // At t = mu (unstressed, no temp shift): p = 0.5
        let p = c.fail_probability(2.0, 1.0, 1.0, 0.0, 1.0);
        assert!((p - 0.5).abs() < 1e-9);
        // One sigma above: ~0.841
        let p = c.fail_probability(2.1, 1.0, 1.0, 0.0, 1.0);
        assert!((p - 0.8413).abs() < 1e-3);
        // Far below: ~0
        let p = c.fail_probability(1.0, 1.0, 1.0, 0.0, 1.0);
        assert!(p < 1e-9);
    }

    #[test]
    fn longer_interval_monotonically_riskier() {
        let c = test_cell(2.0);
        let mut prev = 0.0;
        for i in 1..40 {
            let t = i as f64 * 0.1;
            let p = c.fail_probability(t, 1.0, 1.0, 0.0, 1.0);
            assert!(p >= prev, "p({t}) = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn stress_lowers_mu_and_raises_risk() {
        let c = test_cell(2.0);
        let relaxed = c.fail_probability(1.8, 1.0, 1.0, 0.0, 1.0);
        let stressed = c.fail_probability(1.8, 1.0, 1.0, 1.0, 1.0);
        assert!(stressed > relaxed);
        // full stress with strength 0.2: mu 2.0 -> 1.6
        assert!((c.effective_mu(1.0, 1.0, 1.0) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn vrt_low_state_raises_risk() {
        let c = test_cell(2.0);
        let high = c.fail_probability(1.5, 1.0, 1.0, 0.0, 1.0);
        let low = c.fail_probability(1.5, 1.0, 1.0, 0.0, 0.7);
        assert!(low > high);
    }

    #[test]
    fn temperature_scale_shifts_cdf() {
        let c = test_cell(2.0);
        let cold = c.fail_probability(1.5, 1.0, 1.0, 0.0, 1.0);
        let hot = c.fail_probability(1.5, 0.7, 0.8, 0.0, 1.0); // mu: 1.4
        assert!(hot > cold);
        assert!(hot > 0.5); // t above shifted mu
    }

    #[test]
    fn stress_under_solid_patterns() {
        use reaper_dram_model::ChipGeometry;
        let g = ChipGeometry::small();
        let mut c = test_cell(2.0);
        // signature all-ones: solid1 neighborhood fully stresses the cell
        c.dpd_signature = 0b1111;
        assert_eq!(c.stress_under(DataPattern::solid1(), g), 1.0);
        assert_eq!(c.stress_under(DataPattern::solid0(), g), 0.0);
        // signature 0b0011 (N,S stress on 1): solid1 gives 2/4
        c.dpd_signature = 0b0011;
        assert_eq!(c.stress_under(DataPattern::solid1(), g), 0.5);
        assert_eq!(c.stress_under(DataPattern::solid0(), g), 0.5);
    }

    #[test]
    fn stored_bit_follows_pattern() {
        use reaper_dram_model::ChipGeometry;
        let g = ChipGeometry::small();
        let c = test_cell(2.0);
        assert!(!c.stored_bit(DataPattern::solid0(), g));
        assert!(c.stored_bit(DataPattern::solid1(), g));
    }

    #[test]
    fn worst_case_dominates_any_stress() {
        let c = test_cell(2.0);
        let worst = c.worst_case_fail_probability(1.9, 1.0, 1.0, 1.0);
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(c.fail_probability(1.9, 1.0, 1.0, s, 1.0) <= worst + 1e-12);
        }
    }
}
