//! The simulated DRAM chip: weak-cell population synthesis and retention
//! trials.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reaper_analysis::dist::{Exponential, LogNormal, Poisson};
use reaper_exec::cancel::CancelToken;
use reaper_exec::num;
use reaper_exec::rng::stream;
use reaper_dram_model::{Celsius, ChipGeometry, DataPattern, Ms};

use crate::batch::MAX_BATCH_ROUNDS;
use crate::cell::WeakCell;
use crate::config::RetentionConfig;
use crate::plan::{PatternLowering, PlanCache, PlanKey, PlanStats, TrialCtx, TrialEngine, TrialPlan};
use crate::vrt::{ArrivalCell, TwoStateVrt};

/// Hard clamp on per-cell σ (seconds) so candidate windowing stays tight.
/// Fig. 6b: the overwhelming majority of cells sit well under 200 ms.
const SIGMA_CAP_SECS: f64 = 0.35;

/// Smallest materialized base retention μ (seconds). Cells below this would
/// fail within the JEDEC 64 ms interval and are factory-repaired in real
/// devices.
const MU_MIN_SECS: f64 = 0.05;

/// Z-score window outside which a trial outcome is treated as certain
/// (|z| > 4 ⇒ p < 3.2e-5 or > 1 − 3.2e-5).
pub(crate) const Z_CUTOFF: f64 = 4.0;

/// Domain separator for per-(cell, trial) RNG lanes, so trial draws can
/// never collide with any other stream derived from the same chip seed.
pub(crate) const TRIAL_DOMAIN: u64 = 0x5245_4150_4552_0001; // "REAPER" 01

/// Below this many candidate cells a trial runs sequentially; the window
/// is too small to amortize thread spawn cost.
pub(crate) const PAR_MIN_CELLS: usize = 512;

/// Upper bound (exclusive) of the candidate window in sort-key order:
/// cells whose best-case (lowest) effective μ can come within
/// `Z_CUTOFF`·σ_cap of the trial interval. The single definition shared by
/// the trial path, the ground-truth path, and plan compilation, so the
/// window math cannot drift between them.
pub(crate) fn candidate_window_end(
    sort_keys: &[f64],
    t_secs: f64,
    ms_scale: f64,
    ss_scale: f64,
) -> usize {
    let cut = (t_secs + Z_CUTOFF * SIGMA_CAP_SECS * ss_scale) / ms_scale;
    sort_keys.partition_point(|&k| k < cut)
}

/// Stable-sorts `keys` ascending and applies the same permutation to
/// `items`, in place. Byte-identical ordering to stable-sorting `(key,
/// item)` pairs by key — equal keys keep their original relative order —
/// without draining either buffer.
///
/// # Panics
/// Panics if any key comparison is unordered (NaN keys).
fn stable_cosort_by_key<T>(keys: &mut [f64], items: &mut [T]) {
    debug_assert_eq!(keys.len(), items.len());
    let mut order: Vec<u32> = (0..num::to_u32(keys.len())).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = (keys.get(num::idx(a)), keys.get(num::idx(b)));
        ka.partial_cmp(&kb)
            .expect("invariant: sort keys are finite products of finite cell params")
    });
    // Apply the permutation by cycle-chasing: positions below `i` already
    // hold their final element, so following the chain through them finds
    // where the element destined for `i` currently lives.
    for i in 0..order.len() {
        let mut src = num::idx(
            *order
                .get(i)
                .expect("invariant: i < order.len() by loop bound"),
        );
        while src < i {
            src = num::idx(
                *order
                    .get(src)
                    .expect("invariant: permutation entries are in-bounds indices"),
            );
        }
        *order
            .get_mut(i)
            .expect("invariant: i < order.len() by loop bound") = num::to_u32(src);
        keys.swap(i, src);
        items.swap(i, src);
    }
}

/// The set of cells that failed one retention trial, as sorted dense linear
/// indices into the chip's geometry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrialOutcome {
    failures: Vec<u64>,
}

impl TrialOutcome {
    fn from_unsorted(mut v: Vec<u64>) -> Self {
        v.sort_unstable();
        v.dedup();
        Self { failures: v }
    }

    /// Wraps an already sorted, duplicate-free index vector (the batch
    /// kernel emits rounds in this form) without re-sorting.
    fn from_sorted(v: Vec<u64>) -> Self {
        debug_assert!(
            // lint: allow(panic) windows(2) always yields 2-element slices
            v.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending indices"
        );
        Self { failures: v }
    }

    /// Number of failing cells.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// True if no cell failed.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failing cell indices, sorted ascending.
    pub fn failures(&self) -> &[u64] {
        &self.failures
    }

    /// Whether `index` failed in this trial (binary search).
    pub fn contains(&self, index: u64) -> bool {
        self.failures.binary_search(&index).is_ok()
    }

    /// Consumes the outcome, returning the sorted index vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.failures
    }
}

impl<'a> IntoIterator for &'a TrialOutcome {
    type Item = &'a u64;
    type IntoIter = core::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.failures.iter()
    }
}

/// The result of a cancellable trial run: the outcomes completed before
/// the stop, plus whether the run was cut short.
///
/// When `cancelled` is false the outcomes are the complete run. When true
/// they are a bit-identical prefix of what the uncancelled run would have
/// produced — see the `_cancellable` entry points on [`SimulatedChip`]
/// for the exact prefix guarantee each one makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialTrials {
    /// Completed trial outcomes, in the entry point's usual order.
    pub outcomes: Vec<TrialOutcome>,
    /// True if a [`CancelToken`] stopped the run at a batch boundary.
    pub cancelled: bool,
}

/// A simulated LPDDR4 chip with a synthetic weak-cell population.
///
/// Deterministic in `(config, seed)`. Wall-clock time is explicit: the test
/// harness advances it via [`SimulatedChip::advance`], and VRT processes
/// (state flips, new-failure arrivals) are evaluated lazily against it.
#[derive(Debug, Clone)]
pub struct SimulatedChip {
    cfg: RetentionConfig,
    /// Weak cells sorted ascending by `sort_key` = worst-case effective μ at
    /// the reference temperature.
    cells: Vec<WeakCell>,
    /// Sort keys parallel to `cells`.
    sort_keys: Vec<f64>,
    /// Two-state processes for base cells with `vrt_index`.
    base_vrt: Vec<TwoStateVrt>,
    /// VRT-arrived failing cells (paper §5.3 steady-state accumulation).
    arrivals: Vec<ArrivalCell>,
    /// Occupied cell indices (weak cells plus VRT arrivals). Membership
    /// checks only, but kept ordered so `Clone`d chips compare cleanly.
    used: BTreeSet<u64>,
    now_ms: f64,
    last_arrival_ms: f64,
    /// Sequential generator for population synthesis and VRT arrivals
    /// (inherently ordered processes).
    rng: StdRng,
    /// Root of the per-(cell, trial) hash-derived RNG lanes used by
    /// [`SimulatedChip::retention_trial`]. Derived from the chip seed.
    stream_base: u64,
    /// Count of retention trials performed; each trial's draws live on
    /// lanes keyed by this nonce, so repeated identical trials still see
    /// fresh randomness.
    trial_nonce: u64,
    /// Bumped whenever chip state that a compiled plan *could* depend on
    /// changes (`advance` with positive dt, VRT-arrival insertion); the
    /// plan cache drops its compiled tier when it observes a new epoch.
    plan_epoch: u64,
    /// Pattern lowerings and compiled trial plans (see [`crate::plan`]).
    plan_cache: PlanCache,
    /// Which engine `retention_trial` routes through.
    engine: TrialEngine,
}

/// How one trial is served, resolved by `route_trial` before the scan.
enum TrialRoute {
    Scalar,
    Lowered(usize),
    Compiled(usize),
}

impl SimulatedChip {
    /// Synthesizes a chip from `cfg`, deterministically in `seed`.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`RetentionConfig::validate`].
    pub fn new(cfg: RetentionConfig, seed: u64) -> Self {
        // lint: allow(panic) documented `# Panics` contract of the constructor
        cfg.validate().expect("invalid retention config");
        let mut rng = StdRng::seed_from_u64(seed);

        let n_cells = num::idx_u64(
            Poisson::new(cfg.expected_weak_cells())
                .expect("invariant: validated config yields a positive lambda")
                .sample(&mut rng),
        );

        let sigma_dist = LogNormal::from_median(cfg.sigma_median_secs, cfg.sigma_log_sd)
            .expect("invariant: validated config yields finite positive sigma params");

        let density = cfg.geometry.density_bits();
        let mut used = BTreeSet::new();
        let mut cells = Vec::with_capacity(n_cells);
        let mut base_vrt = Vec::new();

        let u_min = (MU_MIN_SECS / cfg.mu_max_secs).powf(cfg.ber_exponent);
        for _ in 0..n_cells {
            let index = loop {
                let idx = rng.random_range(0..density);
                if used.insert(idx) {
                    break idx;
                }
            };
            // Inverse-CDF sample of the t^β tail on [MU_MIN, mu_max].
            let u: f64 = u_min + rng.random::<f64>() * (1.0 - u_min);
            let mu0 = cfg.mu_max_secs * u.powf(1.0 / cfg.ber_exponent);
            let sigma0 = sigma_dist.sample(&mut rng).min(SIGMA_CAP_SECS);
            let vrt_index = if rng.random::<f64>() < cfg.vrt_fraction {
                let cycle_ms = cfg.vrt_dwell_hours * 3.6e6;
                base_vrt.push(TwoStateVrt::new(
                    (cycle_ms * cfg.vrt_low_duty).max(1.0),
                    (cycle_ms * (1.0 - cfg.vrt_low_duty)).max(1.0),
                    0.0,
                ));
                Some(num::to_u32(base_vrt.len() - 1))
            } else {
                None
            };
            cells.push(WeakCell {
                index,
                mu0: num::f32_narrow(mu0),
                sigma0: num::f32_narrow(sigma0),
                vulnerable_bit: rng.random(),
                dpd_strength: num::f32_narrow(rng.random::<f64>() * cfg.dpd_max_strength),
                dpd_signature: rng.random_range(0..16u8),
                vrt_index,
            });
        }

        let mut chip = Self {
            sort_keys: Vec::new(),
            cells,
            base_vrt,
            arrivals: Vec::new(),
            used,
            now_ms: 0.0,
            last_arrival_ms: 0.0,
            rng,
            stream_base: seed,
            trial_nonce: 0,
            plan_epoch: 0,
            plan_cache: PlanCache::default(),
            engine: TrialEngine::default(),
            cfg,
        };
        chip.rebuild_sort();
        chip
    }

    fn sort_key_of(cfg: &RetentionConfig, cell: &WeakCell) -> f64 {
        let vrt_factor = if cell.vrt_index.is_some() {
            cfg.vrt_low_mu_factor
        } else {
            1.0
        };
        cell.mu0 as f64 * (1.0 - cell.dpd_strength as f64) * vrt_factor
    }

    fn rebuild_sort(&mut self) {
        // Reuse both existing buffers: refill the key vector in place and
        // co-sort it with the cell vector through one stable index
        // permutation, instead of draining into a transient pair vector
        // and re-collecting two fresh allocations.
        let cfg = &self.cfg;
        self.sort_keys.clear();
        self.sort_keys
            .extend(self.cells.iter().map(|c| Self::sort_key_of(cfg, c)));
        stable_cosort_by_key(&mut self.sort_keys, &mut self.cells);
    }

    /// The chip's configuration.
    pub fn config(&self) -> &RetentionConfig {
        &self.cfg
    }

    /// The modeled geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.cfg.geometry
    }

    /// All materialized base weak cells (unspecified order).
    pub fn cells(&self) -> &[WeakCell] {
        &self.cells
    }

    /// The sort-key vector parallel to [`SimulatedChip::cells`]; exposed
    /// for in-crate tests that compile plans directly.
    #[cfg(test)]
    pub(crate) fn sort_keys_for_tests(&self) -> &[f64] {
        &self.sort_keys
    }

    /// The VRT chain vector; exposed for in-crate tests that run plans
    /// directly.
    #[cfg(test)]
    pub(crate) fn base_vrt_for_tests(&self) -> &[TwoStateVrt] {
        &self.base_vrt
    }

    /// Number of currently active VRT-arrival cells.
    pub fn arrival_count(&self) -> usize {
        self.arrivals.len()
    }

    /// Current simulated wall-clock time.
    pub fn now(&self) -> Ms {
        Ms::new(self.now_ms)
    }

    /// Advances the simulated wall clock by `dt`.
    ///
    /// # Panics
    /// Panics if `dt` is negative.
    pub fn advance(&mut self, dt: Ms) {
        assert!(dt.as_ms() >= 0.0, "cannot advance time backwards");
        if dt.as_ms() > 0.0 {
            // Defensive plan invalidation: compiled plans read VRT state
            // live and are provably time-independent, but the contract is
            // "no cached condition survives a state change" — cheap to
            // enforce, impossible to get wrong later.
            self.plan_epoch += 1;
        }
        self.now_ms += dt.as_ms();
    }

    /// Converts a failing-cell BER: `count / represented_bits`.
    pub fn ber_of_count(&self, count: usize) -> f64 {
        count as f64 / self.cfg.represented_bits as f64
    }

    /// Performs one retention trial: the chip holds `pattern` with refresh
    /// disabled for `interval` at DRAM temperature `temp`, then reports the
    /// cells whose read-back differs from the written data.
    ///
    /// The simulated clock is *not* advanced; the test harness
    /// (`reaper-softmc`) owns time accounting. VRT arrivals are drawn for
    /// the wall-clock span since the last trial.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn retention_trial(
        &mut self,
        pattern: DataPattern,
        interval: Ms,
        temp: Celsius,
    ) -> TrialOutcome {
        assert!(interval.is_positive(), "retention interval must be positive");
        let t = interval.as_secs();
        self.process_arrivals(t, temp);

        let ms_scale = self.cfg.mu_temp_scale(temp);
        let ss_scale = self.cfg.sigma_temp_scale(temp);
        let end = candidate_window_end(&self.sort_keys, t, ms_scale, ss_scale);

        let nonce = self.trial_nonce;
        self.trial_nonce += 1;

        // Route through the configured engine. Every engine is
        // draw-for-draw identical (see crate::plan); only the amount of
        // per-trial recomputation differs.
        let route = self.route_trial(pattern, interval, temp);
        let ctx = TrialCtx {
            t_secs: t,
            ms_scale,
            ss_scale,
            stream_base: self.stream_base,
            nonce,
            now_ms: self.now_ms,
            low_mu_factor: self.cfg.vrt_low_mu_factor,
        };
        let (mut failures, vrt_updates) = match route {
            TrialRoute::Compiled(i) => {
                if self.engine == TrialEngine::Batch {
                    // The batch engine serves single trials as batches of
                    // one through the bit-plane kernel.
                    self.plan_cache.stats.batch_rounds += 1;
                    let mut batch = self
                        .plan_cache
                        .plan_at_mut(i)
                        .run_rounds(&self.base_vrt, &ctx, &[nonce]);
                    let failures = batch
                        .rounds
                        .pop()
                        .expect("invariant: one nonce in yields one round out");
                    (failures, batch.vrt_updates)
                } else {
                    self.plan_cache
                        .plan_at_mut(i)
                        .run_round(&self.base_vrt, &ctx)
                }
            }
            TrialRoute::Lowered(i) => {
                self.plan_cache
                    .lowering_at(i)
                    .run_trial(&self.cells, &self.base_vrt, end, &ctx)
            }
            TrialRoute::Scalar => self.scalar_window_scan(pattern, end, &ctx),
        };
        for (i, state) in vrt_updates {
            // lint: allow(panic) indices originate from base_vrt positions above
            self.base_vrt[num::idx(i)] = state;
        }

        self.arrival_round(t, ms_scale, ss_scale, &mut failures);

        TrialOutcome::from_unsorted(failures)
    }

    /// One round over the VRT-arrival cells: freshly arrived cells fail
    /// (that is their arrival event); established ones fail while in their
    /// low state. The list is small and its draws live on the sequential
    /// RNG, so the batched entry points call this once per round *in nonce
    /// order* — the exact draw sequence a round-major trial loop makes.
    fn arrival_round(&mut self, t_secs: f64, ms_scale: f64, ss_scale: f64, failures: &mut Vec<u64>) {
        let now_ms = self.now_ms;
        let rng = &mut self.rng;
        for a in &mut self.arrivals {
            if !a.is_active(now_ms) {
                continue;
            }
            if a.fresh {
                a.fresh = false;
                a.vrt.force_state(true, now_ms);
                failures.push(a.cell.index);
                continue;
            }
            if a.vrt.observe(now_ms, rng) {
                let mu = a.cell.effective_mu(ms_scale, 1.0, 1.0);
                let sigma = a.cell.sigma0 as f64 * ss_scale;
                let z = (t_secs - mu) / sigma;
                if z > Z_CUTOFF
                    || (z > -Z_CUTOFF && rng.random::<f64>() < reaper_analysis::special::phi(z))
                {
                    failures.push(a.cell.index);
                }
            }
        }
    }

    /// The original scalar window scan: recomputes polarity, stress, μ, σ,
    /// z, and `phi(z)` per cell per trial. Kept as the baseline engine and
    /// the reference the plan engines are verified against.
    ///
    /// Every cell draws from its own (seed, trial, cell) hash lane, so
    /// the outcome is a pure function of that tuple — independent of
    /// evaluation order and therefore of thread count. VRT cells are
    /// observed on a *copy* of their chain state; the advanced states
    /// are merged back sequentially after the parallel region (each
    /// vrt_index belongs to exactly one cell, so merges never conflict).
    fn scalar_window_scan(
        &self,
        pattern: DataPattern,
        end: usize,
        ctx: &TrialCtx,
    ) -> (Vec<u64>, Vec<(u32, TwoStateVrt)>) {
        let geometry = self.cfg.geometry;
        let base_vrt = &self.base_vrt;
        let per_cell = |cell: &WeakCell| -> (Option<u64>, Option<(u32, TwoStateVrt)>) {
            if cell.stored_bit(pattern, geometry) != cell.vulnerable_bit {
                return (None, None);
            }
            let mut lane = stream(&[ctx.stream_base, TRIAL_DOMAIN, ctx.nonce, cell.index]);
            let mut vrt_update = None;
            let vrt_factor = match cell.vrt_index {
                Some(i) => {
                    let mut vrt = *base_vrt
                        .get(num::idx(i))
                        .expect("invariant: vrt_index values are positions pushed into base_vrt");
                    let in_low = vrt.observe_at(ctx.now_ms, lane.next_f64());
                    vrt_update = Some((i, vrt));
                    if in_low {
                        ctx.low_mu_factor
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            let stress = cell.stress_under(pattern, geometry);
            let mu = cell.effective_mu(ctx.ms_scale, stress, vrt_factor);
            let sigma = cell.sigma0 as f64 * ctx.ss_scale;
            let z = (ctx.t_secs - mu) / sigma;
            if z < -Z_CUTOFF {
                return (None, vrt_update);
            }
            let fails = z > Z_CUTOFF || lane.next_f64() < reaper_analysis::special::phi(z);
            (fails.then_some(cell.index), vrt_update)
        };

        // lint: allow(panic) end comes from partition_point, always <= len
        let window = &self.cells[..end];
        let mut failures = Vec::new();
        let mut vrt_updates: Vec<(u32, TwoStateVrt)> = Vec::new();
        if window.len() < PAR_MIN_CELLS || reaper_exec::thread_count() <= 1 {
            for cell in window {
                let (fail, update) = per_cell(cell);
                failures.extend(fail);
                vrt_updates.extend(update);
            }
        } else {
            let chunks = reaper_exec::par_chunk_map(window, 256, |_, chunk| {
                let mut fails = Vec::new();
                let mut updates = Vec::new();
                for cell in chunk {
                    let (fail, update) = per_cell(cell);
                    fails.extend(fail);
                    updates.extend(update);
                }
                (fails, updates)
            });
            for (fails, updates) in chunks {
                failures.extend(fails);
                vrt_updates.extend(updates);
            }
        }
        (failures, vrt_updates)
    }

    /// Resolves which engine serves this trial, compiling/promoting cache
    /// entries as the engine policy dictates (see [`TrialEngine`]).
    fn route_trial(&mut self, pattern: DataPattern, interval: Ms, temp: Celsius) -> TrialRoute {
        self.plan_cache.roll_epoch(self.plan_epoch);
        if self.engine == TrialEngine::Scalar {
            self.plan_cache.stats.scalar_trials += 1;
            return TrialRoute::Scalar;
        }

        // Compiled tier: exact (pattern, interval, temp) condition.
        if matches!(
            self.engine,
            TrialEngine::Auto | TrialEngine::Compiled | TrialEngine::Batch
        ) {
            let key = PlanKey::new(pattern, interval, temp);
            if let Some(i) = self.plan_cache.find_plan(&key) {
                self.plan_cache.stats.plan_trials += 1;
                return TrialRoute::Compiled(i);
            }
            let promote = matches!(self.engine, TrialEngine::Compiled | TrialEngine::Batch)
                || self.plan_cache.note_plan_key(key);
            if promote {
                let plan = TrialPlan::compile(
                    &self.cfg,
                    &self.cells,
                    &self.sort_keys,
                    self.plan_cache.peek_lowering(pattern),
                    pattern,
                    interval,
                    temp,
                );
                let i = self.plan_cache.insert_plan(plan);
                self.plan_cache.stats.plans_compiled += 1;
                self.plan_cache.stats.plan_trials += 1;
                return TrialRoute::Compiled(i);
            }
        }

        // Lowered tier: pattern-only lanes; survives epoch rolls and the
        // harness's per-trial temperature jitter.
        if let Some(i) = self.plan_cache.find_lowering(pattern) {
            self.plan_cache.stats.lowered_trials += 1;
            return TrialRoute::Lowered(i);
        }
        let promote = self.engine == TrialEngine::Lowered || self.plan_cache.note_pattern(pattern);
        if promote {
            let lowering = PatternLowering::build(&self.cells, pattern, self.cfg.geometry);
            let i = self.plan_cache.insert_lowering(lowering);
            self.plan_cache.stats.lowerings_built += 1;
            self.plan_cache.stats.lowered_trials += 1;
            return TrialRoute::Lowered(i);
        }

        self.plan_cache.stats.scalar_trials += 1;
        TrialRoute::Scalar
    }

    /// Runs `rounds` retention trials at one fixed condition through the
    /// bit-plane batch kernel, returning one outcome per round in nonce
    /// order. Bit-identical to calling [`SimulatedChip::retention_trial`]
    /// `rounds` times (under any engine), but each full batch of
    /// [`MAX_BATCH_ROUNDS`] visits every in-band lane once instead of
    /// once per round.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn retention_trial_rounds(
        &mut self,
        pattern: DataPattern,
        interval: Ms,
        temp: Celsius,
        rounds: u32,
    ) -> Vec<TrialOutcome> {
        self.retention_trial_batches(pattern, interval, temp, rounds, MAX_BATCH_ROUNDS)
    }

    /// Like [`SimulatedChip::retention_trial_rounds`] with an explicit
    /// per-pass batch cap (a testing/tuning knob): rounds are evaluated in
    /// consecutive batches of at most `max_batch` nonces. The cap changes
    /// wall-clock only, never outcomes.
    ///
    /// # Panics
    /// Panics if `interval` is not positive or `max_batch` is outside
    /// `1..=MAX_BATCH_ROUNDS`.
    pub fn retention_trial_batches(
        &mut self,
        pattern: DataPattern,
        interval: Ms,
        temp: Celsius,
        rounds: u32,
        max_batch: usize,
    ) -> Vec<TrialOutcome> {
        let run =
            self.retention_trial_batches_cancellable(pattern, interval, temp, rounds, max_batch, &CancelToken::new());
        debug_assert!(!run.cancelled, "a fresh token cannot be cancelled");
        run.outcomes
    }

    /// [`SimulatedChip::retention_trial_batches`] with a cooperative
    /// [`CancelToken`], polled at every kernel-batch boundary — the
    /// cancellation points of a racing profiling strategy. Cancellation
    /// never lands mid-batch: the returned outcomes are a *prefix* of the
    /// uncancelled run's rounds (in nonce order) and are bit-identical to
    /// that prefix; [`PartialTrials::cancelled`] reports whether the run
    /// stopped early.
    ///
    /// A cancelled run has still reserved all `rounds` trial nonces and may
    /// have skipped VRT updates the abandoned rounds would have applied, so
    /// the chip is *not* suitable for continuing a bit-identical sequence —
    /// racing callers discard a cancelled lane's chip along with its
    /// result, which is the intended use.
    ///
    /// # Panics
    /// Panics if `interval` is not positive or `max_batch` is outside
    /// `1..=MAX_BATCH_ROUNDS`.
    pub fn retention_trial_batches_cancellable(
        &mut self,
        pattern: DataPattern,
        interval: Ms,
        temp: Celsius,
        rounds: u32,
        max_batch: usize,
        cancel: &CancelToken,
    ) -> PartialTrials {
        assert!(interval.is_positive(), "retention interval must be positive");
        assert!(
            (1..=MAX_BATCH_ROUNDS).contains(&max_batch),
            "max_batch must be in 1..={MAX_BATCH_ROUNDS}, got {max_batch}"
        );
        let t = interval.as_secs();
        self.process_arrivals(t, temp);

        let ms_scale = self.cfg.mu_temp_scale(temp);
        let ss_scale = self.cfg.sigma_temp_scale(temp);
        let ctx = TrialCtx {
            t_secs: t,
            ms_scale,
            ss_scale,
            stream_base: self.stream_base,
            nonce: 0, // per-round nonces come from the batch
            now_ms: self.now_ms,
            low_mu_factor: self.cfg.vrt_low_mu_factor,
        };

        let plan = self.batch_plan(pattern, interval, temp);
        let first_nonce = self.trial_nonce;
        self.trial_nonce += u64::from(rounds);

        let mut outcomes = Vec::with_capacity(num::idx_u64(u64::from(rounds)));
        let mut cancelled = false;
        let mut next = first_nonce;
        let end_nonce = first_nonce + u64::from(rounds);
        while next < end_nonce {
            if cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            let k = (end_nonce - next).min(num::to_u64(max_batch));
            let nonces: Vec<u64> = (next..next + k).collect();
            next += k;
            let batch = self
                .plan_cache
                .plan_at_mut(plan)
                .run_rounds(&self.base_vrt, &ctx, &nonces);
            self.plan_cache.stats.plan_trials += k;
            self.plan_cache.stats.batch_rounds += k;
            for (i, state) in batch.vrt_updates {
                // lint: allow(panic) indices originate from base_vrt positions above
                self.base_vrt[num::idx(i)] = state;
            }
            // Arrival draws live on the sequential RNG: replay them per
            // round in nonce order, after the kernel (which never touches
            // that RNG), so the draw sequence matches a round-major loop.
            // Kernel rounds arrive sorted; re-sort only when an arrival
            // cell actually appended.
            for mut failures in batch.rounds {
                let kernel_len = failures.len();
                self.arrival_round(t, ms_scale, ss_scale, &mut failures);
                outcomes.push(if failures.len() == kernel_len {
                    TrialOutcome::from_sorted(failures)
                } else {
                    TrialOutcome::from_unsorted(failures)
                });
            }
        }
        PartialTrials {
            outcomes,
            cancelled,
        }
    }

    /// Runs a heterogeneous trial schedule through the batch kernel: one
    /// trial per `(pattern, interval, temp)` entry, outcomes in schedule
    /// order, bit-identical to a [`SimulatedChip::retention_trial`] loop
    /// over the same entries.
    ///
    /// Entries are grouped by exact condition (first-seen order) and each
    /// group's trials run as batches of up to `max_batch`, keyed by their
    /// original schedule-position nonces. The regrouping is outcome-safe:
    /// per-(cell, nonce) hash lanes are order-independent; a VRT chain's
    /// state can only transition on its *first* observation at the current
    /// wall clock, and that observation carries the cell's globally
    /// minimal activating nonce in both orders (any group processed
    /// earlier that activated the cell would contain a smaller one);
    /// and arrival-cell draws are replayed on the sequential RNG in
    /// schedule order after all groups.
    ///
    /// # Panics
    /// Panics if any interval is not positive or `max_batch` is outside
    /// `1..=MAX_BATCH_ROUNDS`.
    pub fn retention_trial_schedule(
        &mut self,
        schedule: &[(DataPattern, Ms, Celsius)],
        max_batch: usize,
    ) -> Vec<TrialOutcome> {
        let run = self.retention_trial_schedule_cancellable(schedule, max_batch, &CancelToken::new());
        debug_assert!(!run.cancelled, "a fresh token cannot be cancelled");
        run.outcomes
    }

    /// [`SimulatedChip::retention_trial_schedule`] with a cooperative
    /// [`CancelToken`], polled at every kernel-batch boundary (each
    /// condition group's `TrialPlan::run_rounds` chunk). Cancellation
    /// never lands mid-batch.
    ///
    /// The returned outcomes are the longest *schedule prefix* whose
    /// entries all completed, bit-identical to the same prefix of the
    /// uncancelled run: per-(cell, nonce) kernel lanes are position-
    /// independent, and arrival draws are replayed on the sequential RNG
    /// in schedule order over exactly that prefix — the same draws, in the
    /// same order, that the uncancelled run would have made for it.
    /// Completed work from groups *past* the prefix is discarded.
    ///
    /// As with the rounds form, a cancelled run leaves the chip's nonce
    /// reservation and VRT state unsuitable for continuing a bit-identical
    /// sequence; racing callers discard the cancelled lane's chip.
    ///
    /// # Panics
    /// Panics if any interval is not positive or `max_batch` is outside
    /// `1..=MAX_BATCH_ROUNDS`.
    pub fn retention_trial_schedule_cancellable(
        &mut self,
        schedule: &[(DataPattern, Ms, Celsius)],
        max_batch: usize,
        cancel: &CancelToken,
    ) -> PartialTrials {
        assert!(
            (1..=MAX_BATCH_ROUNDS).contains(&max_batch),
            "max_batch must be in 1..={MAX_BATCH_ROUNDS}, got {max_batch}"
        );
        let Some(&(_, first_interval, first_temp)) = schedule.first() else {
            return PartialTrials {
                outcomes: Vec::new(),
                cancelled: false,
            };
        };
        for (_, interval, _) in schedule {
            assert!(interval.is_positive(), "retention interval must be positive");
        }
        // The first condition drives the arrival draw, exactly as in a
        // sequential loop (later same-clock calls are retain-only no-ops).
        self.process_arrivals(first_interval.as_secs(), first_temp);

        let first_nonce = self.trial_nonce;
        self.trial_nonce += num::to_u64(schedule.len());

        // Group schedule positions by exact condition, first-seen order.
        struct Group {
            key: PlanKey,
            pattern: DataPattern,
            interval: Ms,
            temp: Celsius,
            positions: Vec<usize>,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (pos, &(pattern, interval, temp)) in schedule.iter().enumerate() {
            let key = PlanKey::new(pattern, interval, temp);
            match groups.iter_mut().find(|g| g.key == key) {
                Some(g) => g.positions.push(pos),
                None => groups.push(Group {
                    key,
                    pattern,
                    interval,
                    temp,
                    positions: vec![pos],
                }),
            }
        }

        let mut failures_by_pos: Vec<Option<Vec<u64>>> = vec![None; schedule.len()];
        let mut cancelled = false;
        'groups: for g in &groups {
            let t = g.interval.as_secs();
            let ms_scale = self.cfg.mu_temp_scale(g.temp);
            let ss_scale = self.cfg.sigma_temp_scale(g.temp);
            let ctx = TrialCtx {
                t_secs: t,
                ms_scale,
                ss_scale,
                stream_base: self.stream_base,
                nonce: 0, // per-round nonces come from the batch
                now_ms: self.now_ms,
                low_mu_factor: self.cfg.vrt_low_mu_factor,
            };
            let plan = self.batch_plan(g.pattern, g.interval, g.temp);
            for chunk in g.positions.chunks(max_batch) {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break 'groups;
                }
                let nonces: Vec<u64> = chunk
                    .iter()
                    .map(|&pos| first_nonce + num::to_u64(pos))
                    .collect();
                let k = num::to_u64(chunk.len());
                let batch = self
                    .plan_cache
                    .plan_at_mut(plan)
                    .run_rounds(&self.base_vrt, &ctx, &nonces);
                self.plan_cache.stats.plan_trials += k;
                self.plan_cache.stats.batch_rounds += k;
                for (i, state) in batch.vrt_updates {
                    // lint: allow(panic) indices originate from base_vrt positions above
                    self.base_vrt[num::idx(i)] = state;
                }
                for (&pos, fails) in chunk.iter().zip(batch.rounds) {
                    *failures_by_pos
                        .get_mut(pos)
                        .expect("invariant: positions enumerate the schedule") = Some(fails);
                }
            }
        }

        // The completed prefix: everything before the first unserved
        // position. Filled positions *past* that boundary came from groups
        // that finished before the cancel landed; the uncancelled run
        // would interleave their arrival draws with the missing entries',
        // so they cannot be returned bit-identically and are discarded.
        let completed = failures_by_pos
            .iter()
            .position(Option::is_none)
            .unwrap_or(schedule.len());

        // Replay arrivals on the sequential RNG in schedule order, over
        // exactly the completed prefix.
        let mut outcomes = Vec::with_capacity(completed);
        for (slot, &(_, interval, temp)) in failures_by_pos.iter_mut().zip(schedule).take(completed) {
            let mut failures = slot
                .take()
                .expect("invariant: positions before the prefix boundary are filled");
            let kernel_len = failures.len();
            self.arrival_round(
                interval.as_secs(),
                self.cfg.mu_temp_scale(temp),
                self.cfg.sigma_temp_scale(temp),
                &mut failures,
            );
            outcomes.push(if failures.len() == kernel_len {
                TrialOutcome::from_sorted(failures)
            } else {
                TrialOutcome::from_unsorted(failures)
            });
        }
        PartialTrials {
            outcomes,
            cancelled,
        }
    }

    /// Finds or compiles the plan serving a batched run. The batched entry
    /// points always use the compiled tier regardless of the configured
    /// engine: asking for many rounds at one condition *is* the recurrence
    /// signal the Auto engine otherwise waits for.
    fn batch_plan(&mut self, pattern: DataPattern, interval: Ms, temp: Celsius) -> usize {
        self.plan_cache.roll_epoch(self.plan_epoch);
        let key = PlanKey::new(pattern, interval, temp);
        self.plan_cache.note_plan_key(key);
        if let Some(i) = self.plan_cache.find_plan(&key) {
            return i;
        }
        let plan = TrialPlan::compile(
            &self.cfg,
            &self.cells,
            &self.sort_keys,
            self.plan_cache.peek_lowering(pattern),
            pattern,
            interval,
            temp,
        );
        self.plan_cache.stats.plans_compiled += 1;
        self.plan_cache.insert_plan(plan)
    }

    /// Selects the engine `retention_trial` routes through. The default is
    /// [`TrialEngine::Auto`]; every engine produces bit-identical outcomes,
    /// so this only trades compile-time against per-round work.
    pub fn set_trial_engine(&mut self, engine: TrialEngine) {
        self.engine = engine;
    }

    /// The currently configured trial engine.
    pub fn trial_engine(&self) -> TrialEngine {
        self.engine
    }

    /// Routing/compilation counters since chip construction.
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_cache.stats
    }

    /// Builds pattern lowerings for `patterns` up front (idempotent). Call
    /// before a profiling loop whose patterns are known so the first
    /// iteration already runs on packed lanes; recurring patterns would
    /// otherwise only be promoted on their second sighting.
    pub fn prewarm_lowerings(&mut self, patterns: &[DataPattern]) {
        for &pattern in patterns {
            if self.plan_cache.find_lowering(pattern).is_none() {
                let lowering = PatternLowering::build(&self.cells, pattern, self.cfg.geometry);
                self.plan_cache.insert_lowering(lowering);
                self.plan_cache.stats.lowerings_built += 1;
            }
        }
    }

    /// Number of candidate cells a trial at `(interval, temp)` scans —
    /// the size of the sort-key window shared by all engines.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn candidate_window(&self, interval: Ms, temp: Celsius) -> usize {
        assert!(interval.is_positive(), "interval must be positive");
        let t = interval.as_secs();
        candidate_window_end(
            &self.sort_keys,
            t,
            self.cfg.mu_temp_scale(temp),
            self.cfg.sigma_temp_scale(temp),
        )
    }

    /// Draws Poisson VRT arrivals for the wall-clock span since the last
    /// check and retires expired ones.
    fn process_arrivals(&mut self, t_secs: f64, temp: Celsius) {
        let elapsed_hours = (self.now_ms - self.last_arrival_ms) / 3.6e6;
        self.last_arrival_ms = self.now_ms;
        if elapsed_hours <= 0.0 {
            self.arrivals.retain(|a| a.is_active(self.now_ms));
            return;
        }
        let rate = self.cfg.vrt_arrival_rate_per_hour(t_secs, temp);
        let n = Poisson::new(rate * elapsed_hours)
            .expect("invariant: arrival rate and elapsed span are positive here")
            .sample(&mut self.rng);
        if n > 0 {
            // New arrival cells change what a trial can report; roll the
            // plan epoch so the compiled tier is rebuilt (arrivals are
            // handled outside the plans, but see `advance` — the epoch
            // contract covers every merge).
            self.plan_epoch += 1;
        }

        let sigma_dist = LogNormal::from_median(self.cfg.sigma_median_secs, self.cfg.sigma_log_sd)
            .expect("invariant: validated config yields finite positive sigma params");
        let lifetime = Exponential::from_mean(self.cfg.vrt_lifetime_hours * 3.6e6)
            .expect("invariant: validated config yields a positive VRT lifetime");
        let density = self.cfg.geometry.density_bits();
        let ms_scale = self.cfg.mu_temp_scale(temp);

        for _ in 0..n {
            let index = loop {
                let idx = self.rng.random_range(0..density);
                if self.used.insert(idx) {
                    break idx;
                }
            };
            // The arrival's low-state μ lies comfortably inside the failing
            // range of the interval that exposed it (at trial temperature).
            let frac = 0.55 + 0.35 * self.rng.random::<f64>();
            let mu0 = (t_secs * frac) / ms_scale;
            let cycle_ms = self.cfg.vrt_dwell_hours * 3.6e6;
            self.arrivals.push(ArrivalCell {
                cell: WeakCell {
                    index,
                    mu0: num::f32_narrow(mu0),
                    sigma0: num::f32_narrow(sigma_dist.sample(&mut self.rng).min(SIGMA_CAP_SECS)),
                    vulnerable_bit: self.rng.random(),
                    dpd_strength: 0.0,
                    dpd_signature: 0,
                    vrt_index: None,
                },
                expires_at_ms: self.now_ms + lifetime.sample(&mut self.rng),
                arrived_at_ms: self.now_ms,
                vrt: TwoStateVrt::new(
                    (cycle_ms * self.cfg.vrt_low_duty).max(1.0),
                    (cycle_ms * (1.0 - self.cfg.vrt_low_duty)).max(1.0),
                    self.now_ms,
                ),
                fresh: true,
            });
        }
        self.arrivals.retain(|a| a.is_active(self.now_ms));
    }

    /// Analytic ground truth: all cells whose *worst-case* single-trial
    /// failure probability at `(interval, temp)` is at least `min_prob` —
    /// i.e. "all possible failing cells at the target conditions" in the
    /// paper's coverage definition (§1), with a probability floor.
    ///
    /// Includes currently-active VRT arrivals (their retention state is in
    /// the failing range right now).
    ///
    /// # Panics
    /// Panics if `interval` is not positive or `min_prob` is outside (0, 1].
    pub fn failing_set_worst_case(
        &self,
        interval: Ms,
        temp: Celsius,
        min_prob: f64,
    ) -> Vec<u64> {
        assert!(interval.is_positive(), "interval must be positive");
        assert!(
            min_prob > 0.0 && min_prob <= 1.0,
            "min_prob must be in (0, 1]"
        );
        let t = interval.as_secs();
        let ms_scale = self.cfg.mu_temp_scale(temp);
        let ss_scale = self.cfg.sigma_temp_scale(temp);
        let end = candidate_window_end(&self.sort_keys, t, ms_scale, ss_scale);

        // lint: allow(panic) end comes from partition_point, always <= len
        let mut out: Vec<u64> = self.cells[..end]
            .iter()
            .filter(|c| {
                let vrt_factor = if c.vrt_index.is_some() {
                    self.cfg.vrt_low_mu_factor
                } else {
                    1.0
                };
                c.worst_case_fail_probability(t, ms_scale, ss_scale, vrt_factor) >= min_prob
            })
            .map(|c| c.index)
            .collect();

        for a in &self.arrivals {
            if a.is_active(self.now_ms)
                && a.cell.worst_case_fail_probability(t, ms_scale, ss_scale, 1.0) >= min_prob
            {
                out.push(a.cell.index);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Vendor;
    use std::collections::HashSet;

    fn quick_cfg() -> RetentionConfig {
        // 1/8 capacity for fast tests.
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8)
    }

    fn trial_union(
        chip: &mut SimulatedChip,
        interval: Ms,
        temp: Celsius,
        iterations: u64,
    ) -> HashSet<u64> {
        let mut set = HashSet::new();
        for it in 0..iterations {
            for p in DataPattern::standard_set(it) {
                set.extend(chip.retention_trial(p, interval, temp).into_vec());
            }
        }
        set
    }

    #[test]
    fn chip_is_deterministic_in_seed() {
        let a = SimulatedChip::new(quick_cfg(), 7);
        let b = SimulatedChip::new(quick_cfg(), 7);
        assert_eq!(a.cells().len(), b.cells().len());
        assert_eq!(a.cells(), b.cells());
        let c = SimulatedChip::new(quick_cfg(), 8);
        assert_ne!(a.cells(), c.cells());
    }

    #[test]
    fn population_size_tracks_expectation() {
        let cfg = quick_cfg();
        let expected = cfg.expected_weak_cells();
        let chip = SimulatedChip::new(cfg, 1);
        let n = chip.cells().len() as f64;
        assert!(
            (n - expected).abs() < 5.0 * expected.sqrt().max(1.0),
            "n = {n}, expected ≈ {expected}"
        );
    }

    #[test]
    fn trials_are_reproducible_for_same_seed_and_history() {
        let mut a = SimulatedChip::new(quick_cfg(), 3);
        let mut b = SimulatedChip::new(quick_cfg(), 3);
        let p = DataPattern::checkerboard();
        let out_a = a.retention_trial(p, Ms::new(1024.0), Celsius::new(60.0));
        let out_b = b.retention_trial(p, Ms::new(1024.0), Celsius::new(60.0));
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn failure_count_scales_with_interval() {
        let mut chip = SimulatedChip::new(quick_cfg(), 5);
        let t45 = Celsius::new(60.0);
        let n_512 = trial_union(&mut chip, Ms::new(512.0), t45, 4).len();
        let n_2048 = trial_union(&mut chip, Ms::new(2048.0), t45, 4).len();
        assert!(
            n_2048 as f64 > 5.0 * n_512.max(1) as f64,
            "512ms: {n_512}, 2048ms: {n_2048}"
        );
    }

    #[test]
    fn failure_count_scales_with_temperature() {
        let mut chip = SimulatedChip::new(quick_cfg(), 6);
        let n_cool = trial_union(&mut chip, Ms::new(1024.0), Celsius::new(60.0), 4).len();
        let n_hot = trial_union(&mut chip, Ms::new(1024.0), Celsius::new(70.0), 4).len();
        // Eq. 1: +10°C ≈ e^{2.0} ≈ 7.4x for Vendor B.
        let ratio = n_hot as f64 / n_cool.max(1) as f64;
        assert!((3.0..15.0).contains(&ratio), "cool {n_cool}, hot {n_hot}");
    }

    #[test]
    fn observation1_higher_interval_superset_statistically() {
        // Cells found at an interval are (overwhelmingly) found again at a
        // longer interval.
        let mut chip = SimulatedChip::new(quick_cfg(), 9);
        let t45 = Celsius::new(60.0);
        let low = trial_union(&mut chip, Ms::new(1024.0), t45, 8);
        let high = trial_union(&mut chip, Ms::new(1536.0), t45, 8);
        let repeat = low.intersection(&high).count();
        let frac = repeat as f64 / low.len().max(1) as f64;
        assert!(frac > 0.90, "repeat fraction {frac} ({repeat}/{})", low.len());
    }

    #[test]
    fn ground_truth_is_covered_by_exhaustive_profiling() {
        let mut chip = SimulatedChip::new(quick_cfg(), 10);
        let t45 = Celsius::new(60.0);
        let interval = Ms::new(1024.0);
        let gt: HashSet<u64> = chip
            .failing_set_worst_case(interval, t45, 0.5)
            .into_iter()
            .collect();
        // Profiling *above* target must find essentially all p>=0.5 cells.
        let found = trial_union(&mut chip, Ms::new(1536.0), t45, 16);
        let covered = gt.iter().filter(|i| found.contains(i)).count();
        let cov = covered as f64 / gt.len().max(1) as f64;
        assert!(cov > 0.98, "coverage {cov} ({covered}/{})", gt.len());
    }

    #[test]
    fn vrt_arrivals_accumulate_over_time() {
        let mut chip = SimulatedChip::new(quick_cfg(), 11);
        let t45 = Celsius::new(60.0);
        let interval = Ms::new(2048.0);
        // Simulate 20 hours of elapsed time in ten 2-hour steps.
        let mut total_arrivals = 0;
        for _ in 0..10 {
            chip.advance(Ms::from_hours(2.0));
            let _ = chip.retention_trial(DataPattern::random(1), interval, t45);
            total_arrivals = chip.arrival_count();
        }
        // Vendor B at 2048ms: ~180 cells/hr at full capacity, 1/8 here ≈
        // 22/hr ⇒ ~450 over 20h (minus departures).
        assert!(
            total_arrivals > 100,
            "expected substantial VRT arrivals, got {total_arrivals}"
        );
    }

    #[test]
    fn no_time_elapsed_no_arrivals() {
        let mut chip = SimulatedChip::new(quick_cfg(), 12);
        let _ = chip.retention_trial(
            DataPattern::random(1),
            Ms::new(2048.0),
            Celsius::new(60.0),
        );
        assert_eq!(chip.arrival_count(), 0);
    }

    #[test]
    fn trial_outcome_api() {
        let out = TrialOutcome::from_unsorted(vec![5, 1, 3, 3]);
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert!(out.contains(3));
        assert!(!out.contains(2));
        assert_eq!(out.failures(), &[1, 3, 5]);
        let v: Vec<u64> = (&out).into_iter().copied().collect();
        assert_eq!(v, vec![1, 3, 5]);
        assert_eq!(out.into_vec(), vec![1, 3, 5]);
        assert!(TrialOutcome::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn trial_rejects_zero_interval() {
        let mut chip = SimulatedChip::new(quick_cfg(), 13);
        chip.retention_trial(DataPattern::solid0(), Ms::ZERO, Celsius::new(60.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_negative() {
        let mut chip = SimulatedChip::new(quick_cfg(), 14);
        chip.advance(Ms::new(-1.0));
    }

    #[test]
    fn ber_of_count_uses_represented_bits() {
        let chip = SimulatedChip::new(quick_cfg(), 15);
        let bits = chip.config().represented_bits;
        assert!((chip.ber_of_count(bits as usize) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stable_cosort_matches_pair_sort_reference() {
        // Duplicate keys included: stability must keep original order.
        let ref_keys = [3.0, 1.0, 2.0, 1.0, 3.0, 0.5, 2.0, 1.0];
        let ref_items: Vec<u64> = (0..ref_keys.len() as u64).collect();

        let mut paired: Vec<(f64, u64)> = ref_keys
            .iter()
            .copied()
            .zip(ref_items.iter().copied())
            .collect();
        paired.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

        let mut keys = ref_keys.to_vec();
        let mut items = ref_items;
        stable_cosort_by_key(&mut keys, &mut items);

        let (want_keys, want_items): (Vec<f64>, Vec<u64>) = paired.into_iter().unzip();
        assert_eq!(keys, want_keys);
        assert_eq!(items, want_items);

        // Degenerate sizes.
        let mut k: Vec<f64> = vec![];
        let mut v: Vec<u64> = vec![];
        stable_cosort_by_key(&mut k, &mut v);
        let mut k = vec![7.0];
        let mut v = vec![9u64];
        stable_cosort_by_key(&mut k, &mut v);
        assert_eq!((k, v), (vec![7.0], vec![9]));
    }

    #[test]
    fn all_engines_produce_identical_outcomes() {
        let engines = [
            TrialEngine::Scalar,
            TrialEngine::Lowered,
            TrialEngine::Compiled,
            TrialEngine::Batch,
            TrialEngine::Auto,
        ];
        let mut transcripts = Vec::new();
        for engine in engines {
            let mut chip = SimulatedChip::new(quick_cfg(), 21);
            chip.set_trial_engine(engine);
            assert_eq!(chip.trial_engine(), engine);
            let mut transcript = Vec::new();
            for it in 0..3 {
                for p in DataPattern::standard_set(it) {
                    transcript.push(
                        chip.retention_trial(p, Ms::new(1024.0), Celsius::new(60.0))
                            .into_vec(),
                    );
                }
                chip.advance(Ms::from_hours(1.0));
            }
            transcripts.push(transcript);
        }
        for t in &transcripts {
            assert_eq!(t, &transcripts[0]);
        }
    }

    #[test]
    fn batched_rounds_match_sequential_trials() {
        // The multi-round entry point must replicate a retention_trial
        // loop bit-for-bit — across a time advance (VRT arrivals, epoch
        // roll) and at every batch cap, including partial final batches.
        let p = DataPattern::checkerboard();
        let interval = Ms::new(1024.0);
        let temp = Celsius::new(60.0);
        let script = |chip: &mut SimulatedChip| {
            chip.advance(Ms::from_hours(2.0));
        };

        let mut reference = SimulatedChip::new(quick_cfg(), 31);
        script(&mut reference);
        let want: Vec<TrialOutcome> = (0..10)
            .map(|_| reference.retention_trial(p, interval, temp))
            .collect();

        for cap in [1, 3, MAX_BATCH_ROUNDS] {
            let mut chip = SimulatedChip::new(quick_cfg(), 31);
            script(&mut chip);
            let got = chip.retention_trial_batches(p, interval, temp, 10, cap);
            assert_eq!(got, want, "batch cap {cap}");
            let s = chip.plan_stats();
            assert_eq!(s.batch_rounds, 10);
            assert_eq!(s.plan_trials, 10);
        }

        // And the convenience wrapper takes the full-width path.
        let mut chip = SimulatedChip::new(quick_cfg(), 31);
        script(&mut chip);
        assert_eq!(chip.retention_trial_rounds(p, interval, temp, 10), want);
    }

    #[test]
    fn schedule_matches_sequential_trials() {
        // A heterogeneous schedule (rotating patterns, a second interval)
        // regrouped by condition must match the sequential loop exactly.
        let temp = Celsius::new(60.0);
        let mut schedule: Vec<(DataPattern, Ms, Celsius)> = Vec::new();
        for it in 0..3 {
            for p in DataPattern::standard_set(it) {
                schedule.push((p, Ms::new(1024.0), temp));
            }
            schedule.push((DataPattern::checkerboard(), Ms::new(1536.0), temp));
        }

        let mut reference = SimulatedChip::new(quick_cfg(), 32);
        reference.advance(Ms::from_hours(1.0));
        let want: Vec<TrialOutcome> = schedule
            .iter()
            .map(|&(p, i, c)| reference.retention_trial(p, i, c))
            .collect();

        for cap in [2, MAX_BATCH_ROUNDS] {
            let mut chip = SimulatedChip::new(quick_cfg(), 32);
            chip.advance(Ms::from_hours(1.0));
            let got = chip.retention_trial_schedule(&schedule, cap);
            assert_eq!(got, want, "batch cap {cap}");
        }

        // Degenerate schedule.
        let mut chip = SimulatedChip::new(quick_cfg(), 32);
        assert!(chip.retention_trial_schedule(&[], 8).is_empty());
    }

    #[test]
    fn auto_engine_promotes_on_second_sighting() {
        let mut chip = SimulatedChip::new(quick_cfg(), 22);
        let p = DataPattern::checkerboard();
        let interval = Ms::new(1024.0);
        let temp = Celsius::new(60.0);

        // First sighting: nothing cached yet, trial runs scalar.
        let _ = chip.retention_trial(p, interval, temp);
        let s = chip.plan_stats();
        assert_eq!((s.scalar_trials, s.lowered_trials, s.plan_trials), (1, 0, 0));

        // Second sighting of the exact condition: compiled.
        let _ = chip.retention_trial(p, interval, temp);
        let s = chip.plan_stats();
        assert_eq!(s.plans_compiled, 1);
        assert_eq!(s.plan_trials, 1);

        // Third: plan-cache hit, no recompile.
        let _ = chip.retention_trial(p, interval, temp);
        let s = chip.plan_stats();
        assert_eq!(s.plan_trials, 2);
        assert_eq!(s.plans_compiled, 1);

        // Time advance invalidates the compiled tier (plan sightings
        // included); the next trial must not be served by a stale plan.
        chip.advance(Ms::from_hours(1.0));
        let _ = chip.retention_trial(p, interval, temp);
        let s = chip.plan_stats();
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn prewarmed_lowering_serves_first_trial() {
        let mut chip = SimulatedChip::new(quick_cfg(), 23);
        let p = DataPattern::col_stripe();
        chip.prewarm_lowerings(&[p, p]);
        let s = chip.plan_stats();
        assert_eq!(s.lowerings_built, 1, "prewarm is idempotent");

        // Jittered temperature (fresh condition every trial, as under the
        // test harness): the plan tier never promotes, the lowering serves.
        for (i, temp) in [60.0, 60.01, 59.99].iter().enumerate() {
            let _ = chip.retention_trial(p, Ms::new(1024.0), Celsius::new(*temp));
            assert_eq!(chip.plan_stats().lowered_trials, i as u64 + 1);
        }
        assert_eq!(chip.plan_stats().scalar_trials, 0);
    }

    #[test]
    fn candidate_window_grows_with_interval_and_temp() {
        let chip = SimulatedChip::new(quick_cfg(), 24);
        let w_short = chip.candidate_window(Ms::new(512.0), Celsius::new(60.0));
        let w_long = chip.candidate_window(Ms::new(2048.0), Celsius::new(60.0));
        let w_hot = chip.candidate_window(Ms::new(512.0), Celsius::new(70.0));
        assert!(w_short <= w_long);
        assert!(w_short <= w_hot);
        assert!(w_long <= chip.cells().len());
    }

    #[test]
    fn pattern_polarity_matters() {
        // solid0 and solid1 each expose only one polarity of cells; together
        // with the full standard set, both halves appear.
        let mut chip = SimulatedChip::new(quick_cfg(), 16);
        let t45 = Celsius::new(60.0);
        let interval = Ms::new(3000.0);
        let s0: HashSet<u64> = (0..4)
            .flat_map(|_| {
                chip.retention_trial(DataPattern::solid0(), interval, t45)
                    .into_vec()
            })
            .collect();
        let s1: HashSet<u64> = (0..4)
            .flat_map(|_| {
                chip.retention_trial(DataPattern::solid1(), interval, t45)
                    .into_vec()
            })
            .collect();
        assert!(!s0.is_empty() && !s1.is_empty());
        let overlap = s0.intersection(&s1).count();
        // Polarity-disjoint by construction.
        assert_eq!(overlap, 0, "s0 {} s1 {} overlap {overlap}", s0.len(), s1.len());
    }
}
