//! Calibration parameters for a simulated chip.
//!
//! Every constant here traces to a number published in the paper; see the
//! field docs and `DESIGN.md` §5.

use reaper_dram_model::{Celsius, ChipGeometry, Vendor};

/// Full parameterization of one simulated chip's retention behavior.
///
/// Construct via [`RetentionConfig::for_vendor`] and adjust fields through
/// the builder-style `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionConfig {
    /// DRAM vendor; selects the Eq. 1 temperature coefficient and the Fig. 4
    /// VRT accumulation fit.
    pub vendor: Vendor,
    /// Geometry used for cell addresses. Defaults to
    /// [`ChipGeometry::small`] (64 Mb of modeled address space).
    pub geometry: ChipGeometry,
    /// Number of bits of real DRAM this simulated chip *represents* for
    /// failure-count purposes. Defaults to 2 GB (the paper's characterized
    /// module size), so absolute failure counts match the paper even though
    /// the modeled address space is smaller.
    pub represented_bits: u64,
    /// Reference **DRAM** temperature for the base parameters. The paper
    /// characterizes at 45 °C *ambient* with the DRAM held 15 °C above
    /// ambient (§4), so the reference DRAM temperature is 60 °C. All trial
    /// temperatures passed to the simulator are DRAM temperatures; ambient
    /// deltas equal DRAM deltas because the offset is constant.
    pub ref_temp: Celsius,
    /// Bit error rate at a 1024 ms refresh interval at `ref_temp`
    /// (paper §6.2.3: 2464 failures / 2 GB ⇒ ≈1.43e-7).
    pub ber_at_1024ms: f64,
    /// Exponent β of the retention-time tail: `BER(t) ∝ t^β` (slope of
    /// Fig. 2 on log-log axes).
    pub ber_exponent: f64,
    /// Largest base retention μ (seconds, at `ref_temp`) materialized in the
    /// weak-cell population. Trials beyond roughly `mu_max·e^{-αΔT}` minus
    /// DPD headroom would undercount failures; [`RetentionConfig::validate`]
    /// guards the default sweeps.
    pub mu_max_secs: f64,
    /// Median of the lognormal per-cell CDF spread σ (seconds, at
    /// `ref_temp`). Fig. 6b: majority of cells under 200 ms at 40 °C.
    pub sigma_median_secs: f64,
    /// Log-standard-deviation of the per-cell σ lognormal.
    pub sigma_log_sd: f64,
    /// Fraction of weak cells exhibiting two-state VRT behavior
    /// (paper Fig. 6 footnote: ~2 % at those conditions).
    pub vrt_fraction: f64,
    /// VRT new-failure accumulation rate at 1024 ms, in cells/hour per
    /// `represented_bits` (paper §6.2.3: A = 0.73 cells/hour for 2 GB).
    pub vrt_rate_at_1024ms_per_hour: f64,
    /// Exponent b of the accumulation power law `A(t) = a·t^b` (Fig. 4).
    /// Implied by Fig. 3 (≈180 cells/hour at 2048 ms) vs. §6.2.3
    /// (0.73 cells/hour at 1024 ms): b ≈ 7.9.
    pub vrt_rate_exponent: f64,
    /// Mean active lifetime (hours) of a VRT-arrived failing cell before its
    /// retention state migrates back out of the failing range. Keeps the
    /// per-iteration failing-set size stable (Fig. 3: accumulation rate ≈
    /// departure rate).
    pub vrt_lifetime_hours: f64,
    /// Duty cycle: probability a VRT cell is in its low-retention state
    /// during a given trial.
    pub vrt_low_duty: f64,
    /// Maximum fractional μ reduction from data-pattern coupling (per-cell
    /// strength is sampled uniformly in `[0, dpd_max_strength]`).
    pub dpd_max_strength: f64,
    /// Fractional μ reduction of a base-population VRT cell's low state.
    pub vrt_low_mu_factor: f64,
    /// Mean dwell (hours) of base-population VRT cells in each state.
    pub vrt_dwell_hours: f64,
}

impl RetentionConfig {
    /// Paper-calibrated defaults for `vendor`.
    ///
    /// The three vendors differ in temperature coefficient (Eq. 1), BER
    /// magnitude/tail slope (Fig. 2 shows vendor spread), and VRT
    /// accumulation fit (Fig. 4).
    pub fn for_vendor(vendor: Vendor) -> Self {
        let (ber_at_1024ms, ber_exponent, vrt_rate, vrt_exp) = match vendor {
            Vendor::A => (1.15e-7, 2.40, 0.60, 7.6),
            Vendor::B => (1.43e-7, 2.50, 0.73, 7.9),
            Vendor::C => (1.80e-7, 2.60, 1.00, 8.2),
        };
        Self {
            vendor,
            geometry: ChipGeometry::small(),
            represented_bits: 2 * (1u64 << 30) * 8, // 2 GB
            ref_temp: Celsius::new(60.0),
            ber_at_1024ms,
            ber_exponent,
            mu_max_secs: 4.5,
            sigma_median_secs: 0.060,
            sigma_log_sd: 0.60,
            vrt_fraction: 0.02,
            vrt_rate_at_1024ms_per_hour: vrt_rate,
            vrt_rate_exponent: vrt_exp,
            vrt_lifetime_hours: 12.0,
            vrt_low_duty: 0.10,
            dpd_max_strength: 0.25,
            vrt_low_mu_factor: 0.70,
            vrt_dwell_hours: 2.0,
        }
    }

    /// Scales the represented capacity (and thus all failure counts) by
    /// `num / den`. Used to build cheap chips for 368-chip population
    /// sweeps and to model 8–64 Gb chips in the §7 evaluation.
    pub fn with_capacity_scale(mut self, num: u64, den: u64) -> Self {
        assert!(den > 0, "capacity scale denominator must be nonzero");
        self.represented_bits = self.represented_bits * num / den;
        self
    }

    /// Sets the represented capacity in bits directly.
    pub fn with_represented_bits(mut self, bits: u64) -> Self {
        self.represented_bits = bits;
        self
    }

    /// Sets the maximum materialized base retention μ in seconds.
    pub fn with_mu_max_secs(mut self, secs: f64) -> Self {
        self.mu_max_secs = secs;
        self
    }

    /// Sets the modeled address-space geometry.
    pub fn with_geometry(mut self, geometry: ChipGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Exponential μ-shift coefficient α (per °C), derived so the *count*
    /// of failing cells scales as Eq. 1: with tail `N(<t) ∝ t^β` and
    /// `μ(T) = μ·e^{−αΔT}`, the count scale is `e^{αβΔT}`, so
    /// `α = k_vendor / β`.
    pub fn temp_mu_alpha(&self) -> f64 {
        self.vendor.temperature_coefficient() / self.ber_exponent
    }

    /// μ scale factor for DRAM temperature `t` relative to `ref_temp`.
    pub fn mu_temp_scale(&self, t: Celsius) -> f64 {
        (-self.temp_mu_alpha() * (t - self.ref_temp)).exp()
    }

    /// σ scale factor for temperature `t`: spreads narrow slightly faster
    /// than means shift (Fig. 7 shows both distributions moving left, the σ
    /// distribution tightening).
    pub fn sigma_temp_scale(&self, t: Celsius) -> f64 {
        (-1.2 * self.temp_mu_alpha() * (t - self.ref_temp)).exp()
    }

    /// Bit error rate at refresh interval `t_secs` (seconds) at `ref_temp`:
    /// `BER(t) = BER₁₀₂₄ · (t / 1.024 s)^β`.
    pub fn ber_at(&self, t_secs: f64) -> f64 {
        assert!(t_secs > 0.0, "interval must be positive");
        self.ber_at_1024ms * (t_secs / 1.024).powf(self.ber_exponent)
    }

    /// Expected number of weak cells materialized for this chip
    /// (`represented_bits · BER(mu_max)`).
    pub fn expected_weak_cells(&self) -> f64 {
        self.represented_bits as f64 * self.ber_at(self.mu_max_secs)
    }

    /// VRT new-failure arrival rate (cells/hour, scaled to
    /// `represented_bits`) at refresh interval `t_secs` seconds:
    /// `A(t) = A₁₀₂₄ · (t/1.024)^b`, further scaled by the Eq. 1 temperature
    /// factor.
    pub fn vrt_arrival_rate_per_hour(&self, t_secs: f64, temp: Celsius) -> f64 {
        assert!(t_secs > 0.0, "interval must be positive");
        let base = self.vrt_rate_at_1024ms_per_hour
            * (t_secs / 1.024).powf(self.vrt_rate_exponent)
            * (self.represented_bits as f64 / (2.0 * (1u64 << 30) as f64 * 8.0));
        base * self.vendor.failure_rate_scale(temp - self.ref_temp)
    }

    /// Checks internal consistency (positive rates, sane fractions).
    ///
    /// # Errors
    /// Returns a static description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.ber_at_1024ms <= 0.0 {
            return Err("ber_at_1024ms must be positive");
        }
        if self.ber_exponent <= 0.0 {
            return Err("ber_exponent must be positive");
        }
        if self.mu_max_secs <= 0.0 {
            return Err("mu_max_secs must be positive");
        }
        if !(0.0..=1.0).contains(&self.vrt_fraction) {
            return Err("vrt_fraction must be in [0,1]");
        }
        if !(0.0..=1.0).contains(&self.vrt_low_duty) {
            return Err("vrt_low_duty must be in [0,1]");
        }
        if !(0.0..1.0).contains(&self.dpd_max_strength) {
            return Err("dpd_max_strength must be in [0,1)");
        }
        if self.sigma_median_secs <= 0.0 || self.sigma_log_sd <= 0.0 {
            return Err("sigma parameters must be positive");
        }
        if self.represented_bits == 0 {
            return Err("represented_bits must be nonzero");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Ms;

    #[test]
    fn defaults_validate_for_all_vendors() {
        for v in Vendor::ALL {
            RetentionConfig::for_vendor(v).validate().unwrap();
        }
    }

    #[test]
    fn ber_calibration_matches_paper_example() {
        // §6.2.3: 2464 failures at 1024ms in 2GB at 45°C.
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let expected = cfg.represented_bits as f64 * cfg.ber_at(1.024);
        assert!(
            (expected - 2464.0).abs() / 2464.0 < 0.05,
            "expected ≈2464 failures, got {expected}"
        );
    }

    #[test]
    fn ber_grows_polynomially() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let r = cfg.ber_at(2.048) / cfg.ber_at(1.024);
        assert!((r - 2f64.powf(2.5)).abs() < 1e-9);
    }

    #[test]
    fn temp_scaling_matches_eq1() {
        // Count scaling must be e^{k ΔT}: with tail t^β, the μ shift e^{-αΔT}
        // inflates counts by e^{αβΔT} = e^{kΔT}.
        for v in Vendor::ALL {
            let cfg = RetentionConfig::for_vendor(v);
            let alpha_beta = cfg.temp_mu_alpha() * cfg.ber_exponent;
            assert!(
                (alpha_beta - v.temperature_coefficient()).abs() < 1e-12,
                "{v}"
            );
        }
    }

    #[test]
    fn mu_temp_scale_shrinks_with_heat() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        assert!(cfg.mu_temp_scale(Celsius::new(70.0)) < 1.0);
        assert!(cfg.mu_temp_scale(Celsius::new(55.0)) > 1.0);
        assert_eq!(cfg.mu_temp_scale(Celsius::new(60.0)), 1.0);
        assert!(cfg.sigma_temp_scale(Celsius::new(70.0)) < cfg.mu_temp_scale(Celsius::new(70.0)));
    }

    #[test]
    fn vrt_rate_matches_section_623() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let a = cfg.vrt_arrival_rate_per_hour(1.024, Celsius::new(60.0));
        assert!((a - 0.73).abs() < 1e-9, "A(1024ms) = {a}");
    }

    #[test]
    fn vrt_rate_at_2048ms_is_near_fig3() {
        // Fig. 3: ~1 new cell every 20 s = 180 cells/hour at 2048ms.
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let a = cfg.vrt_arrival_rate_per_hour(2.048, Celsius::new(60.0));
        assert!((100.0..260.0).contains(&a), "A(2048ms) = {a}");
    }

    #[test]
    fn vrt_rate_scales_with_capacity_and_temp() {
        let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 2);
        let a = cfg.vrt_arrival_rate_per_hour(1.024, Celsius::new(60.0));
        assert!((a - 0.365).abs() < 1e-9);
        let hot = cfg.vrt_arrival_rate_per_hour(1.024, Celsius::new(70.0));
        assert!((hot / a - (2.0_f64).exp()).abs() < 1e-9); // e^{0.20 * 10}
    }

    #[test]
    fn expected_weak_cells_reasonable() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let n = cfg.expected_weak_cells();
        // 2464 * (4.5/1.024)^2.5 ≈ 100k
        assert!((50_000.0..200_000.0).contains(&n), "n = {n}");
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut cfg = RetentionConfig::for_vendor(Vendor::A);
        cfg.vrt_fraction = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = RetentionConfig::for_vendor(Vendor::A);
        cfg.ber_at_1024ms = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RetentionConfig::for_vendor(Vendor::A);
        cfg.dpd_max_strength = 1.0;
        assert!(cfg.validate().is_err());
        let cfg = RetentionConfig::for_vendor(Vendor::A).with_represented_bits(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ms_type_interops() {
        // sanity: the config speaks seconds; Ms conversion is lossless.
        assert_eq!(Ms::new(1024.0).as_secs(), 1.024);
    }
}
