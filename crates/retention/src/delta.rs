//! The `RPD1` streaming-profile delta codec: one re-profiling epoch as
//! added/removed failing-cell sets against a base profile.
//!
//! At fleet scale a DIMM's retention profile is a stream of small
//! updates, not a one-shot blob — VRT churn and temperature drift change
//! a tiny fraction of cells per re-profiling epoch. This module is the
//! wire layer for that stream, reusing the sorted-delta varint machinery
//! the `RPF1` full-profile codec introduced (the varint helpers live
//! here now and `reaper_core::profile` delegates to them).
//!
//! ## Wire format
//!
//! | field | encoding |
//! |---|---|
//! | magic | 4 bytes `RPD1` |
//! | `base_epoch` | varint |
//! | `new_epoch` | varint, must be > `base_epoch` |
//! | `base_hash` | 8 bytes LE — content hash of the base `RPF1` bytes |
//! | `result_hash` | 8 bytes LE — content hash of the resulting `RPF1` bytes |
//! | `chunk_id` | 8 bytes LE — content hash of the payload below |
//! | `added_count` | varint |
//! | added cells | sorted-delta varints (first absolute, then `cell − prev − 1`) |
//! | `removed_count` | varint |
//! | removed cells | sorted-delta varints |
//!
//! The payload (everything from `added_count` on) carries no epoch or
//! base identity, so two DIMMs whose re-profiling epochs churned the
//! same cells produce byte-identical payloads with the same `chunk_id`
//! — which is what lets the serve-layer store deduplicate delta chunks
//! across a same-vendor fleet. The header binds a payload to one
//! specific transition (`base_hash` → `result_hash`), so replaying a
//! chunk out of order is detectable before any bytes are trusted.
//!
//! Decoding is hardened against hostile input: every malformed shape —
//! truncation, over-long varints, address overflow, inflated counts,
//! out-of-order epochs, overlapping sets, a chunk ID that does not hash
//! the payload — returns a [`DeltaCodecError`]; nothing panics. The
//! fuzz suite in `tests/delta_codec.rs` mutates valid encodings to hold
//! the line.

use std::collections::BTreeSet;

use reaper_exec::{num, rng};

/// Magic prefix of the delta encoding (`"RPD"` + version `1`).
pub const DELTA_WIRE_MAGIC: [u8; 4] = *b"RPD1";

/// Hash-domain seed for profile content hashes (full `RPF1` bytes).
const CONTENT_HASH_SEED: u64 = 0x5EED_C0DE_0001_F00D;
/// Hash-domain seed for delta chunk IDs (payload bytes).
const CHUNK_ID_SEED: u64 = 0x5EED_C0DE_0002_F00D;

/// Content-addresses an encoded profile: the hash every `base_hash` /
/// `result_hash` field and every profile ETag is derived from.
#[must_use]
pub fn content_hash(profile_bytes: &[u8]) -> u64 {
    rng::hash_bytes(CONTENT_HASH_SEED, profile_bytes)
}

/// Content-addresses a delta payload into its chunk ID.
#[must_use]
pub fn chunk_id_of(payload: &[u8]) -> u64 {
    rng::hash_bytes(CHUNK_ID_SEED, payload)
}

/// How reading one LEB128 varint can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended mid-value (continuation bit set on the last byte).
    Truncated,
    /// The value would not fit in 64 bits.
    Overflow,
    /// The value used more bytes than its minimal encoding. Rejected so
    /// every value has exactly one wire form — the property that lets
    /// chunk IDs content-address payloads and lets equal profiles be
    /// compared byte-for-byte.
    NonCanonical,
}

/// Appends `value` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = u8::try_from(value & 0x7F)
            .expect("invariant: a 7-bit mask always fits in u8");
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `input`, returning the
/// value and the remaining bytes.
///
/// # Errors
/// [`VarintError`] on truncation or a value wider than 64 bits.
pub fn read_varint(input: &[u8]) -> Result<(u64, &[u8]), VarintError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut rest = input;
    loop {
        let Some((&byte, tail)) = rest.split_first() else {
            return Err(VarintError::Truncated);
        };
        rest = tail;
        let payload = u64::from(byte & 0x7F);
        // 10th byte (shift 63) may only carry the final bit.
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(VarintError::Overflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // A terminating zero byte after a continuation byte means
            // the value had a shorter encoding.
            if payload == 0 && shift > 0 {
                return Err(VarintError::NonCanonical);
            }
            return Ok((value, rest));
        }
        shift += 7;
    }
}

/// Decoding failure for [`ProfileDelta::from_bytes`] and friends.
///
/// Deltas arrive over the network; every malformed shape is a plain
/// `Err` — decoding never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCodecError {
    /// Input shorter than the fixed-size header fields.
    TooShort,
    /// Magic bytes do not spell `RPD1`.
    BadMagic,
    /// A varint ran past the end of the input.
    TruncatedVarint,
    /// A varint encoded more than 64 bits.
    VarintOverflow,
    /// A varint used more bytes than its minimal encoding.
    NonCanonicalVarint,
    /// A delta pushed the running address past `u64::MAX`.
    AddressOverflow,
    /// A declared cell count exceeds what the payload can hold.
    CountTooLarge,
    /// `new_epoch` is not strictly greater than `base_epoch`.
    EpochOrder,
    /// A cell appears in both the added and the removed set.
    AddedRemovedOverlap,
    /// The declared chunk ID does not hash the payload bytes.
    ChunkIdMismatch,
    /// Bytes remained after the declared counts were decoded.
    TrailingBytes,
}

impl core::fmt::Display for DeltaCodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match self {
            Self::TooShort => "input shorter than the RPD1 header",
            Self::BadMagic => "magic bytes are not RPD1",
            Self::TruncatedVarint => "varint truncated mid-value",
            Self::VarintOverflow => "varint encodes more than 64 bits",
            Self::NonCanonicalVarint => "varint is not minimally encoded",
            Self::AddressOverflow => "delta overflows the u64 address space",
            Self::CountTooLarge => "declared count exceeds payload capacity",
            Self::EpochOrder => "new_epoch must exceed base_epoch",
            Self::AddedRemovedOverlap => "a cell is both added and removed",
            Self::ChunkIdMismatch => "chunk ID does not hash the payload",
            Self::TrailingBytes => "trailing bytes after the last cell",
        };
        write!(f, "delta decode error: {what}")
    }
}

impl std::error::Error for DeltaCodecError {}

impl From<VarintError> for DeltaCodecError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => DeltaCodecError::TruncatedVarint,
            VarintError::Overflow => DeltaCodecError::VarintOverflow,
            VarintError::NonCanonical => DeltaCodecError::NonCanonicalVarint,
        }
    }
}

/// Why applying a structurally valid delta to a concrete base failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaApplyError {
    /// The delta's `base_hash` does not match the base it was applied to
    /// (out-of-order or cross-profile replay).
    BaseHashMismatch {
        /// Hash the delta was encoded against.
        expected: u64,
        /// Hash of the base actually supplied.
        actual: u64,
    },
    /// An added cell is already present in the base.
    AddedAlreadyPresent(u64),
    /// A removed cell is absent from the base.
    RemovedNotPresent(u64),
    /// The applied result does not hash to the delta's `result_hash`.
    ResultHashMismatch {
        /// Hash the delta promised.
        expected: u64,
        /// Hash of the bytes actually produced.
        actual: u64,
    },
}

impl core::fmt::Display for DeltaApplyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BaseHashMismatch { expected, actual } => write!(
                f,
                "delta apply error: base hash mismatch (delta encoded against \
                 {expected:016x}, applied to {actual:016x})"
            ),
            Self::AddedAlreadyPresent(cell) => {
                write!(f, "delta apply error: added cell {cell} already present")
            }
            Self::RemovedNotPresent(cell) => {
                write!(f, "delta apply error: removed cell {cell} not present")
            }
            Self::ResultHashMismatch { expected, actual } => write!(
                f,
                "delta apply error: result hash mismatch (expected \
                 {expected:016x}, got {actual:016x})"
            ),
        }
    }
}

impl std::error::Error for DeltaApplyError {}

/// Encodes a strictly ascending cell list in sorted-delta varint form.
fn push_sorted_cells(out: &mut Vec<u8>, cells: &[u64]) {
    push_varint(out, num::to_u64(cells.len()));
    let mut prev: Option<u64> = None;
    for &cell in cells {
        match prev {
            None => push_varint(out, cell),
            // The list is strictly ascending by invariant, so -1 is safe.
            Some(p) => push_varint(out, cell - p - 1),
        }
        prev = Some(cell);
    }
}

/// Decodes one sorted-delta cell list, returning the cells (strictly
/// ascending by construction) and the remaining bytes.
fn read_sorted_cells(input: &[u8]) -> Result<(Vec<u64>, &[u8]), DeltaCodecError> {
    let (count, mut rest) = read_varint(input)?;
    // Each cell takes at least one payload byte, so a count beyond the
    // remaining length is corrupt — reject before allocating.
    if count > num::to_u64(rest.len()) {
        return Err(DeltaCodecError::CountTooLarge);
    }
    let mut cells = Vec::with_capacity(num::idx_u64(count));
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let delta;
        (delta, rest) = read_varint(rest)?;
        let cell = match prev {
            None => delta,
            Some(p) => p
                .checked_add(1)
                .and_then(|p1| p1.checked_add(delta))
                .ok_or(DeltaCodecError::AddressOverflow)?,
        };
        cells.push(cell);
        prev = Some(cell);
    }
    Ok((cells, rest))
}

/// Reads an 8-byte little-endian `u64` off the front of `input`.
fn read_u64_le(input: &[u8]) -> Result<(u64, &[u8]), DeltaCodecError> {
    let Some((word, rest)) = input.split_first_chunk::<8>() else {
        return Err(DeltaCodecError::TooShort);
    };
    Ok((u64::from_le_bytes(*word), rest))
}

/// Assembles one `RPD1` wire message from header fields and an already
/// encoded payload.
///
/// This is the reassembly path the serve-layer store uses: it keeps one
/// shared copy of each payload (content-addressed by `chunk_id`) and
/// re-binds it to per-profile headers when serving a delta chain.
/// [`ProfileDelta::to_bytes`] is implemented on top, so stored chunks
/// and freshly encoded deltas can never drift apart.
#[must_use]
pub fn encode_message(
    base_epoch: u64,
    new_epoch: u64,
    base_hash: u64,
    result_hash: u64,
    chunk_id: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 10 + 10 + 24 + payload.len());
    out.extend_from_slice(&DELTA_WIRE_MAGIC);
    push_varint(&mut out, base_epoch);
    push_varint(&mut out, new_epoch);
    out.extend_from_slice(&base_hash.to_le_bytes());
    out.extend_from_slice(&result_hash.to_le_bytes());
    out.extend_from_slice(&chunk_id.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One re-profiling epoch: the failing-cell churn between two
/// consecutive profile snapshots, plus the header that binds it to a
/// specific `base_hash → result_hash` transition.
///
/// The added and removed lists are strictly ascending and disjoint —
/// invariants every constructor (compute or decode) enforces, which is
/// what makes the encoding canonical: equal deltas produce identical
/// bytes and therefore identical chunk IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDelta {
    /// Epoch of the base profile this delta applies on top of.
    pub base_epoch: u64,
    /// Epoch after applying (strictly greater than `base_epoch`).
    pub new_epoch: u64,
    /// Content hash of the base profile's full encoding.
    pub base_hash: u64,
    /// Content hash of the resulting profile's full encoding.
    pub result_hash: u64,
    added: Vec<u64>,
    removed: Vec<u64>,
}

impl ProfileDelta {
    /// Computes the delta between two sorted cell streams (ascending,
    /// duplicate-free — the iteration order of any `BTreeSet<u64>` or
    /// `FailureProfile`).
    pub fn compute<B, N>(
        base: B,
        next: N,
        base_epoch: u64,
        new_epoch: u64,
        base_hash: u64,
        result_hash: u64,
    ) -> Self
    where
        B: IntoIterator<Item = u64>,
        N: IntoIterator<Item = u64>,
    {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut b = base.into_iter().peekable();
        let mut n = next.into_iter().peekable();
        loop {
            match (b.peek().copied(), n.peek().copied()) {
                (None, None) => break,
                (Some(_), None) => removed.extend(b.by_ref()),
                (None, Some(_)) => added.extend(n.by_ref()),
                (Some(x), Some(y)) => {
                    if x == y {
                        b.next();
                        n.next();
                    } else if x < y {
                        removed.push(x);
                        b.next();
                    } else {
                        added.push(y);
                        n.next();
                    }
                }
            }
        }
        Self {
            base_epoch,
            new_epoch,
            base_hash,
            result_hash,
            added,
            removed,
        }
    }

    /// Cells present in the new epoch but not the base, ascending.
    pub fn added(&self) -> &[u64] {
        &self.added
    }

    /// Cells present in the base but not the new epoch, ascending.
    pub fn removed(&self) -> &[u64] {
        &self.removed
    }

    /// True when the epoch changed no cells.
    pub fn is_noop(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total cells churned (added + removed).
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// The epoch- and base-independent payload bytes (added/removed
    /// sections); equal churn yields equal payloads across DIMMs.
    #[must_use]
    pub fn payload_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 2 * self.churn());
        push_sorted_cells(&mut out, &self.added);
        push_sorted_cells(&mut out, &self.removed);
        out
    }

    /// The content-addressed chunk ID of this delta's payload.
    #[must_use]
    pub fn chunk_id(&self) -> u64 {
        chunk_id_of(&self.payload_bytes())
    }

    /// Encodes the full `RPD1` wire message (header + payload).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.payload_bytes();
        encode_message(
            self.base_epoch,
            self.new_epoch,
            self.base_hash,
            self.result_hash,
            chunk_id_of(&payload),
            &payload,
        )
    }

    /// Decodes one `RPD1` message off the front of `bytes`, returning
    /// the delta and the unconsumed tail (messages self-delimit, so a
    /// chain is plain concatenation).
    ///
    /// # Errors
    /// [`DeltaCodecError`] on any malformed prefix. Never panics.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, &[u8]), DeltaCodecError> {
        let Some((magic, rest)) = bytes.split_first_chunk::<4>() else {
            return Err(DeltaCodecError::TooShort);
        };
        if *magic != DELTA_WIRE_MAGIC {
            return Err(DeltaCodecError::BadMagic);
        }
        let (base_epoch, rest) = read_varint(rest)?;
        let (new_epoch, rest) = read_varint(rest)?;
        if new_epoch <= base_epoch {
            return Err(DeltaCodecError::EpochOrder);
        }
        let (base_hash, rest) = read_u64_le(rest)?;
        let (result_hash, rest) = read_u64_le(rest)?;
        let (declared_chunk, rest) = read_u64_le(rest)?;
        let payload_start = rest;
        let (added, rest) = read_sorted_cells(rest)?;
        let (removed, rest) = read_sorted_cells(rest)?;
        // Both lists are strictly ascending; a single merge walk finds
        // any overlap without allocating.
        let mut a = added.iter().peekable();
        let mut r = removed.iter().peekable();
        while let (Some(&&x), Some(&&y)) = (a.peek(), r.peek()) {
            match x.cmp(&y) {
                core::cmp::Ordering::Equal => {
                    return Err(DeltaCodecError::AddedRemovedOverlap)
                }
                core::cmp::Ordering::Less => {
                    a.next();
                }
                core::cmp::Ordering::Greater => {
                    r.next();
                }
            }
        }
        let payload_len = payload_start.len() - rest.len();
        let payload = payload_start
            .get(..payload_len)
            .ok_or(DeltaCodecError::TooShort)?;
        if chunk_id_of(payload) != declared_chunk {
            return Err(DeltaCodecError::ChunkIdMismatch);
        }
        Ok((
            Self {
                base_epoch,
                new_epoch,
                base_hash,
                result_hash,
                added,
                removed,
            },
            rest,
        ))
    }

    /// Decodes exactly one `RPD1` message; trailing bytes are an error.
    ///
    /// # Errors
    /// [`DeltaCodecError`] on any malformed input. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaCodecError> {
        let (delta, rest) = Self::decode_prefix(bytes)?;
        if !rest.is_empty() {
            return Err(DeltaCodecError::TrailingBytes);
        }
        Ok(delta)
    }

    /// Decodes a concatenated chain of `RPD1` messages (the
    /// `GET /v1/profiles/{id}/delta` response body). An empty input is
    /// an empty chain.
    ///
    /// # Errors
    /// [`DeltaCodecError`] on any malformed message. Never panics.
    pub fn decode_chain(bytes: &[u8]) -> Result<Vec<Self>, DeltaCodecError> {
        let mut chain = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            let (delta, tail) = Self::decode_prefix(rest)?;
            chain.push(delta);
            rest = tail;
        }
        Ok(chain)
    }

    /// Applies the churn to a concrete cell set, enforcing the set
    /// constraints (added cells absent, removed cells present). Hash
    /// verification against encoded bytes is the caller's job — see
    /// `FailureProfile::apply_delta` in `reaper-core` for the fully
    /// checked path.
    ///
    /// # Errors
    /// [`DeltaApplyError`] naming the offending cell.
    pub fn apply_to(&self, base: &BTreeSet<u64>) -> Result<BTreeSet<u64>, DeltaApplyError> {
        let mut next = base.clone();
        for &cell in &self.removed {
            if !next.remove(&cell) {
                return Err(DeltaApplyError::RemovedNotPresent(cell));
            }
        }
        for &cell in &self.added {
            if !next.insert(cell) {
                return Err(DeltaApplyError::AddedAlreadyPresent(cell));
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cells: &[u64]) -> BTreeSet<u64> {
        cells.iter().copied().collect()
    }

    fn delta_between(base: &BTreeSet<u64>, next: &BTreeSet<u64>) -> ProfileDelta {
        ProfileDelta::compute(
            base.iter().copied(),
            next.iter().copied(),
            3,
            4,
            0x1111,
            0x2222,
        )
    }

    #[test]
    fn compute_apply_roundtrip() {
        let base = set(&[1, 5, 9, 100]);
        let next = set(&[1, 6, 9, 100, 200]);
        let d = delta_between(&base, &next);
        assert_eq!(d.added(), &[6, 200]);
        assert_eq!(d.removed(), &[5]);
        assert_eq!(d.churn(), 3);
        assert!(!d.is_noop());
        assert_eq!(d.apply_to(&base).expect("applies"), next);
    }

    #[test]
    fn wire_roundtrip_and_canonical_chunk_ids() {
        let base = set(&[2, 4, 8]);
        let next = set(&[2, 8, 16, u64::MAX]);
        let d = delta_between(&base, &next);
        let bytes = d.to_bytes();
        assert_eq!(bytes.get(..4), Some(&b"RPD1"[..]));
        let back = ProfileDelta::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, d);
        assert_eq!(back.chunk_id(), d.chunk_id());
        // Same churn under different headers shares the chunk ID.
        let other = ProfileDelta::compute(
            base.iter().copied(),
            next.iter().copied(),
            7,
            9,
            0xAAAA,
            0xBBBB,
        );
        assert_eq!(other.chunk_id(), d.chunk_id());
        assert_ne!(other.to_bytes(), d.to_bytes());
    }

    #[test]
    fn chains_self_delimit() {
        let a = delta_between(&set(&[1]), &set(&[1, 2]));
        let mut wire = a.to_bytes();
        let b = delta_between(&set(&[1, 2]), &set(&[2, 3]));
        wire.extend_from_slice(&b.to_bytes());
        let chain = ProfileDelta::decode_chain(&wire).expect("chain decodes");
        assert_eq!(chain, vec![a, b]);
        assert!(ProfileDelta::decode_chain(b"").expect("empty chain").is_empty());
    }

    #[test]
    fn apply_enforces_set_constraints() {
        let base = set(&[1, 2]);
        let d = delta_between(&set(&[1]), &set(&[1, 2]));
        assert_eq!(
            d.apply_to(&base),
            Err(DeltaApplyError::AddedAlreadyPresent(2))
        );
        let d = delta_between(&set(&[1, 9]), &set(&[1]));
        assert_eq!(d.apply_to(&base), Err(DeltaApplyError::RemovedNotPresent(9)));
    }

    #[test]
    fn decode_rejects_malformed_inputs_without_panicking() {
        use DeltaCodecError as E;
        assert_eq!(ProfileDelta::from_bytes(b""), Err(E::TooShort));
        assert_eq!(ProfileDelta::from_bytes(b"RPD"), Err(E::TooShort));
        assert_eq!(ProfileDelta::from_bytes(b"RPF1\x00\x01"), Err(E::BadMagic));

        let valid = delta_between(&set(&[1, 5]), &set(&[1, 7, 9])).to_bytes();
        // Every strict prefix must be rejected.
        for cut in 0..valid.len() {
            assert!(
                ProfileDelta::from_bytes(valid.get(..cut).expect("in range")).is_err(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
        // Trailing garbage after a valid message.
        let mut trail = valid.clone();
        trail.push(0);
        assert_eq!(ProfileDelta::from_bytes(&trail), Err(E::TrailingBytes));
        // Payload tampering must trip the chunk-ID check.
        let mut tampered = valid.clone();
        if let Some(last) = tampered.last_mut() {
            *last ^= 0x01;
        }
        assert!(matches!(
            ProfileDelta::from_bytes(&tampered),
            Err(E::ChunkIdMismatch | E::TruncatedVarint | E::VarintOverflow | E::CountTooLarge)
        ));
        // Epoch order: new_epoch == base_epoch.
        let bad = encode_message(4, 4, 0, 0, chunk_id_of(b"\x00\x00"), b"\x00\x00");
        assert_eq!(ProfileDelta::from_bytes(&bad), Err(E::EpochOrder));
        // Overlapping added/removed sets.
        let mut payload = Vec::new();
        push_sorted_cells(&mut payload, &[5]);
        push_sorted_cells(&mut payload, &[5]);
        let bad = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
        assert_eq!(ProfileDelta::from_bytes(&bad), Err(E::AddedRemovedOverlap));
        // 11-byte varint in the added list.
        let mut payload = vec![0x01];
        payload.extend_from_slice(&[0x80; 10]);
        payload.push(0x01);
        payload.push(0x00);
        let bad = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
        assert_eq!(ProfileDelta::from_bytes(&bad), Err(E::VarintOverflow));
        // Address overflow: second added delta wraps past u64::MAX.
        let mut payload = vec![0x02];
        push_varint(&mut payload, u64::MAX);
        push_varint(&mut payload, 0);
        payload.push(0x00);
        let bad = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
        assert_eq!(ProfileDelta::from_bytes(&bad), Err(E::AddressOverflow));
        // Declared count beyond the remaining payload.
        let payload = vec![0x20];
        let bad = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
        assert_eq!(ProfileDelta::from_bytes(&bad), Err(E::CountTooLarge));
    }

    #[test]
    fn varint_layer_reports_truncation_and_overflow() {
        let mut out = Vec::new();
        push_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
        let (v, rest) = read_varint(&out).expect("max decodes");
        assert_eq!(v, u64::MAX);
        assert!(rest.is_empty());
        assert_eq!(read_varint(&[0x80]), Err(VarintError::Truncated));
        let wide = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(read_varint(&wide), Err(VarintError::Overflow));
    }
}
