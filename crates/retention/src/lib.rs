//! Monte-Carlo DRAM retention-failure physics simulator.
//!
//! This crate is the substitution for the paper's 368 real LPDDR4 chips
//! (see `DESIGN.md` §2). It synthesizes per-chip *weak-cell populations*
//! whose statistics are calibrated to what the paper measures:
//!
//! * every cell's failure probability vs. refresh interval is a **normal
//!   CDF** `Φ((t − μ)/σ)` (paper §5.5, Fig. 6a),
//! * the per-cell spreads σ follow a **lognormal** distribution, mostly
//!   under 200 ms (Fig. 6b),
//! * per-chip bit-error rate vs. refresh interval follows the measured
//!   power-law tail (Fig. 2), calibrated to ≈2464 failures per 2 GB at
//!   1024 ms / 45 °C (§6.2.3),
//! * temperature scales failure rates exponentially with the per-vendor
//!   coefficients of Eq. 1 (`R ∝ e^{kΔT}`), implemented as an exponential
//!   shift of every cell's μ and σ (Fig. 7),
//! * **data-pattern dependence**: each cell leaks only when storing its
//!   vulnerable value (true-cell/anti-cell) and carries a random 4-neighbor
//!   aggressor signature that modulates μ (§2.3.2, Fig. 5),
//! * **variable retention time**: a fraction of weak cells toggle between
//!   two retention states with memoryless dwell times, and brand-new failing
//!   cells arrive as a Poisson process whose rate follows the measured
//!   power law `A = a·t^b` (§5.3, Figs. 3–4).
//!
//! The simulator is deterministic given a seed, so every experiment in the
//! workspace is reproducible.
//!
//! # Example
//!
//! ```
//! use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
//! use reaper_retention::{RetentionConfig, SimulatedChip};
//!
//! let cfg = RetentionConfig::for_vendor(Vendor::B);
//! let mut chip = SimulatedChip::new(cfg, 42);
//!
//! // One retention trial: write checkerboard, pause refresh for 2048ms.
//! let fails = chip.retention_trial(
//!     DataPattern::checkerboard(),
//!     Ms::new(2048.0),
//!     Celsius::new(45.0),
//! );
//! // Longer intervals can only fail more cells (statistically).
//! assert!(!fails.is_empty());
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::cast_possible_truncation))]

pub mod batch;
pub mod cell;
pub mod chip;
pub mod config;
pub mod delta;
pub mod plan;
pub mod population;
pub mod spd;
pub mod vrt;

pub use batch::MAX_BATCH_ROUNDS;
pub use cell::WeakCell;
pub use chip::{PartialTrials, SimulatedChip, TrialOutcome};
pub use delta::{DeltaApplyError, DeltaCodecError, ProfileDelta};
pub use plan::{PlanStats, TrialEngine};
pub use config::RetentionConfig;
pub use population::ChipPopulation;
pub use spd::SpdRecord;
