//! Compiled trial plans: a structure-of-arrays batch engine for the
//! retention-trial hot path.
//!
//! Every experiment reduces to running many retention trials at a fixed
//! condition. The scalar path in [`crate::chip::SimulatedChip::retention_trial`]
//! recomputes, per trial and per candidate cell: the stored-bit polarity
//! gate, the DPD stress fraction (six `bit_at` evaluations), the effective
//! μ/σ/z, and the erf-backed `phi(z)`. None of that depends on the trial
//! nonce — only the uniform draws do. This module factors the invariant
//! work out into two cacheable tiers:
//!
//! * [`PatternLowering`] — keyed by *pattern only*. Packs the
//!   polarity-active cell ordinals and their quantized DPD stress levels
//!   (matches-of-4 ∈ 0..=4) into flat lanes. Temperature- and
//!   time-independent, so it survives the harness's per-trial thermal
//!   jitter and `advance` calls.
//! * [`TrialPlan`] — keyed by `(pattern, interval, temp)`. Lowers the
//!   candidate window all the way to per-cell `phi(z)` thresholds in flat
//!   `f64` lanes; a round is then a branch-light linear scan that draws one
//!   uniform per in-band cell and compares against the cached threshold —
//!   no erf, no struct chasing, no VRT copy for non-VRT cells.
//!
//! # Determinism contract
//!
//! Both engines are **bit-identical** to the scalar path. Per cell they
//! construct the same hash lane `stream([stream_base, TRIAL_DOMAIN, nonce,
//! cell.index])`, make the same draws in the same order (VRT observation
//! first, then the failure draw only when `z` is in band), and compute
//! μ, σ, z with the exact same floating-point expression order, so the
//! cached `phi(z)` is the very value the scalar path would compute.
//! Outcomes are merged through `TrialOutcome::from_unsorted` and per-slot
//! VRT writes, both order-independent — hence identical at any thread
//! count. See DESIGN.md §"Compiled trial plans".

use std::sync::Arc;

use reaper_analysis::special::phi;
use reaper_dram_model::{Celsius, ChipGeometry, DataPattern, Ms};
use reaper_exec::num;
use reaper_exec::rng::stream;

use crate::batch::u53_threshold;
use crate::cell::WeakCell;
use crate::chip::{candidate_window_end, PAR_MIN_CELLS, TRIAL_DOMAIN, Z_CUTOFF};
use crate::config::RetentionConfig;
use crate::vrt::TwoStateVrt;

/// Which engine [`crate::SimulatedChip::retention_trial`] routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialEngine {
    /// Adaptive: first sighting of a pattern (or full condition) runs the
    /// cheaper tier and records the key; a second sighting promotes it —
    /// recurring conditions get compiled plans, one-shot conditions never
    /// pay a compile they cannot amortize.
    #[default]
    Auto,
    /// Always the original scalar window scan (baseline / comparison).
    Scalar,
    /// Always the pattern-lowered scan (no per-condition plan).
    Lowered,
    /// Always compile (or fetch) a full `TrialPlan` for the condition.
    Compiled,
    /// Always compile a plan and serve trials through the bit-plane batch
    /// kernel ([`crate::batch`]): single trials run as batches of one,
    /// and the multi-round entry points evaluate up to
    /// [`crate::MAX_BATCH_ROUNDS`] rounds per cell per pass.
    Batch,
}

/// Counters describing how trials were routed; see
/// [`crate::SimulatedChip::plan_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Trials served by the scalar window scan.
    pub scalar_trials: u64,
    /// Trials served by a [`PatternLowering`].
    pub lowered_trials: u64,
    /// Trials served by a compiled [`TrialPlan`].
    pub plan_trials: u64,
    /// Rounds evaluated through the bit-plane batch kernel (a subset of
    /// `plan_trials`: every batched round also uses a compiled plan).
    pub batch_rounds: u64,
    /// Pattern lowerings constructed (including prewarms).
    pub lowerings_built: u64,
    /// Trial plans compiled.
    pub plans_compiled: u64,
    /// Times the epoch rolled while compiled plans were cached (plan-tier
    /// invalidation events; lowerings survive these by construction).
    pub invalidations: u64,
}

/// Cache key for a compiled plan: the full trial condition. Interval and
/// temperature are keyed by their `f64` bit patterns — the plan caches
/// bit-exact `phi(z)` values, so "equal condition" must mean bit-equal
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanKey {
    pattern: DataPattern,
    interval_bits: u64,
    temp_bits: u64,
}

impl PlanKey {
    pub(crate) fn new(pattern: DataPattern, interval: Ms, temp: Celsius) -> Self {
        Self {
            pattern,
            interval_bits: interval.as_ms().to_bits(),
            temp_bits: temp.degrees().to_bits(),
        }
    }
}

/// Per-trial scalar context threaded through the lowered engine: everything
/// a trial needs besides the cell lanes themselves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TrialCtx {
    pub(crate) t_secs: f64,
    pub(crate) ms_scale: f64,
    pub(crate) ss_scale: f64,
    pub(crate) stream_base: u64,
    pub(crate) nonce: u64,
    pub(crate) now_ms: f64,
    pub(crate) low_mu_factor: f64,
}

/// Tier 1: pattern-dependent, condition-independent lowering. For one data
/// pattern, the ascending ordinals (into the μ-sorted cell array) of the
/// polarity-active cells and their quantized DPD stress levels.
///
/// Because the ordinals are ascending, the candidate window `[0, end)`
/// maps to a prefix of the lanes via one `partition_point`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PatternLowering {
    pub(crate) pattern: DataPattern,
    /// Ordinals of cells whose stored bit equals their vulnerable bit
    /// under `pattern` (the packed polarity lane), ascending.
    ord: Vec<u32>,
    /// `stress_matches` ∈ 0..=4 parallel to `ord` (the packed DPD lane);
    /// the stress fraction is `lvl / 4`.
    lvl: Vec<u8>,
}

impl PatternLowering {
    pub(crate) fn build(cells: &[WeakCell], pattern: DataPattern, geometry: ChipGeometry) -> Self {
        let mut ord = Vec::new();
        let mut lvl = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            if cell.stored_bit(pattern, geometry) == cell.vulnerable_bit {
                ord.push(num::to_u32(i));
                lvl.push(cell.stress_matches(pattern, geometry));
            }
        }
        Self { pattern, ord, lvl }
    }

    /// Number of active lanes whose ordinal falls inside the candidate
    /// window `[0, end)`.
    fn active_prefix(&self, end: usize) -> usize {
        self.ord.partition_point(|&o| num::idx(o) < end)
    }

    /// One trial through the lowered lanes. Draw-for-draw identical to the
    /// scalar window scan: polarity-inactive cells never open a hash lane
    /// there either, so skipping them changes no stream.
    pub(crate) fn run_trial(
        &self,
        cells: &[WeakCell],
        base_vrt: &[TwoStateVrt],
        end: usize,
        ctx: &TrialCtx,
    ) -> (Vec<u64>, Vec<(u32, TwoStateVrt)>) {
        let n = self.active_prefix(end);
        let per_active = |j: usize| -> (Option<u64>, Option<(u32, TwoStateVrt)>) {
            let ord = self
                .ord
                .get(j)
                .expect("invariant: j < active_prefix <= ord.len()");
            let cell = cells
                .get(num::idx(*ord))
                .expect("invariant: lowering ordinals index the cell array it was built from");
            let mut lane = stream(&[ctx.stream_base, TRIAL_DOMAIN, ctx.nonce, cell.index]);
            let mut vrt_update = None;
            let vrt_factor = match cell.vrt_index {
                Some(i) => {
                    let mut vrt = *base_vrt
                        .get(num::idx(i))
                        .expect("invariant: vrt_index values are positions pushed into base_vrt");
                    let in_low = vrt.observe_at(ctx.now_ms, lane.next_f64());
                    vrt_update = Some((i, vrt));
                    if in_low {
                        ctx.low_mu_factor
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            let lvl = self
                .lvl
                .get(j)
                .expect("invariant: lvl lane is parallel to ord");
            let stress = f64::from(*lvl) / 4.0;
            let mu = cell.effective_mu(ctx.ms_scale, stress, vrt_factor);
            let sigma = cell.sigma0 as f64 * ctx.ss_scale;
            let z = (ctx.t_secs - mu) / sigma;
            if z < -Z_CUTOFF {
                return (None, vrt_update);
            }
            let fails = z > Z_CUTOFF || lane.next_f64() < phi(z);
            (fails.then_some(cell.index), vrt_update)
        };

        let mut failures = Vec::new();
        let mut vrt_updates = Vec::new();
        if n < PAR_MIN_CELLS || reaper_exec::thread_count() <= 1 {
            for j in 0..n {
                let (fail, update) = per_active(j);
                failures.extend(fail);
                vrt_updates.extend(update);
            }
        } else {
            let chunks = reaper_exec::par_index_map(n, 256, |range| {
                let mut fails = Vec::new();
                let mut updates = Vec::new();
                for j in range {
                    let (fail, update) = per_active(j);
                    fails.extend(fail);
                    updates.extend(update);
                }
                (fails, updates)
            });
            for (fails, updates) in chunks {
                failures.extend(fails);
                vrt_updates.extend(updates);
            }
        }
        (failures, vrt_updates)
    }
}

/// Sentinel threshold: the cell cannot fail at this condition/state
/// (`z < −Z_CUTOFF`; the scalar path performs no failure draw).
pub(crate) const CERTAIN_PASS: f64 = -1.0;
/// Sentinel threshold: the cell always fails at this condition/state
/// (`z > Z_CUTOFF`; the scalar path performs no failure draw).
pub(crate) const CERTAIN_FAIL: f64 = 2.0;

/// The per-state failure threshold with sentinel encoding. In-band values
/// are `phi(z) ∈ (≈3.2e-5, ≈1−3.2e-5)`, so the sentinels are unambiguous.
fn threshold_of(z: f64) -> f64 {
    if z < -Z_CUTOFF {
        CERTAIN_PASS
    } else if z > Z_CUTOFF {
        CERTAIN_FAIL
    } else {
        phi(z)
    }
}

/// The compiled SoA lanes of a [`TrialPlan`].
///
/// Kept behind an `Arc` on the plan: the pooled fan-out under the round
/// scans (`reaper_exec::par_index_map_pooled`) hands work to persistent
/// threads that outlive the caller, and the workspace denies
/// `unsafe_code`, so the lanes must be shareable with a `'static`
/// lifetime. The lanes are immutable after compilation, so sharing them
/// is free of aliasing hazards; only the plan's bookkeeping (`fail_hint`)
/// lives outside the `Arc`.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct PlanLanes {
    /// Non-VRT cells with `z > Z_CUTOFF`: fail every round, no draw.
    pub(crate) certain: Vec<u64>,
    /// In-band non-VRT lanes (structure-of-arrays, index-aligned).
    pub(crate) prob_idx: Vec<u64>,
    pub(crate) prob_mu: Vec<f64>,
    pub(crate) prob_sigma: Vec<f64>,
    pub(crate) prob_z: Vec<f64>,
    pub(crate) prob_thr: Vec<f64>,
    /// `prob_thr` rescaled to `ceil(thr · 2⁵³)` for the batch kernel's
    /// integer-domain compare: `(next_u64() >> 11) < prob_thr_u[i]` iff
    /// `next_f64() < prob_thr[i]`, exactly (see
    /// [`crate::batch::u53_threshold`]).
    pub(crate) prob_thr_u: Vec<u64>,
    /// VRT lanes: base_vrt slot, cell index, and per-cell `[high, low]`
    /// state thresholds (flattened pairs, sentinel-encoded).
    pub(crate) vrt_slot: Vec<u32>,
    pub(crate) vrt_idx: Vec<u64>,
    pub(crate) vrt_thr: Vec<f64>,
}

/// Tier 2: a fully compiled plan for one `(pattern, interval, temp)`.
///
/// Non-VRT cells are resolved at compile time into three classes: certain
/// pass (dropped — no lane, no draw, exactly like the scalar path),
/// certain fail (index appended verbatim each round), and in-band (one
/// uniform draw against the cached `phi(z)`). VRT cells keep both per-state
/// thresholds and are observed every round, exactly like the scalar path.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrialPlan {
    pub(crate) key: PlanKey,
    /// Candidate-window bound the plan was compiled for (consistency
    /// checks; the lanes already encode it).
    end: usize,
    /// Trial interval in seconds (lane-consistency checks).
    t_secs: f64,
    /// The immutable compiled lanes, shared with pooled fan-outs.
    pub(crate) lanes: Arc<PlanLanes>,
    /// Failure count of this plan's most recent round — the capacity
    /// guess for the next round's failure vector. Seeded with the static
    /// `certain + in-band/8 + vrt` heuristic at compile time; reusing the
    /// previous round's actual count stops high-failure conditions from
    /// reallocating every round.
    fail_hint: usize,
}

impl TrialPlan {
    /// Compiles the plan. When a [`PatternLowering`] for the same pattern
    /// is available its packed lanes shortcut the polarity/stress scan;
    /// with or without one the resulting plan is identical.
    pub(crate) fn compile(
        cfg: &RetentionConfig,
        cells: &[WeakCell],
        sort_keys: &[f64],
        lowering: Option<&PatternLowering>,
        pattern: DataPattern,
        interval: Ms,
        temp: Celsius,
    ) -> Self {
        let t = interval.as_secs();
        let ms_scale = cfg.mu_temp_scale(temp);
        let ss_scale = cfg.sigma_temp_scale(temp);
        let geometry = cfg.geometry;
        let end = candidate_window_end(sort_keys, t, ms_scale, ss_scale);

        let mut lanes = PlanLanes::default();

        let mut add = |cell: &WeakCell, lvl: u8| {
            let stress = f64::from(lvl) / 4.0;
            let sigma = cell.sigma0 as f64 * ss_scale;
            match cell.vrt_index {
                Some(slot) => {
                    let mu_high = cell.effective_mu(ms_scale, stress, 1.0);
                    let mu_low = cell.effective_mu(ms_scale, stress, cfg.vrt_low_mu_factor);
                    lanes.vrt_slot.push(slot);
                    lanes.vrt_idx.push(cell.index);
                    lanes.vrt_thr.push(threshold_of((t - mu_high) / sigma));
                    lanes.vrt_thr.push(threshold_of((t - mu_low) / sigma));
                }
                None => {
                    let mu = cell.effective_mu(ms_scale, stress, 1.0);
                    let z = (t - mu) / sigma;
                    if z > Z_CUTOFF {
                        lanes.certain.push(cell.index);
                    } else if z >= -Z_CUTOFF {
                        let thr = phi(z);
                        lanes.prob_idx.push(cell.index);
                        lanes.prob_mu.push(mu);
                        lanes.prob_sigma.push(sigma);
                        lanes.prob_z.push(z);
                        lanes.prob_thr.push(thr);
                        lanes.prob_thr_u.push(u53_threshold(thr));
                    }
                    // z < -Z_CUTOFF: certain pass, dropped — the scalar
                    // path opens a lane but draws nothing for these, so
                    // skipping the lane entirely changes no stream.
                }
            }
        };

        match lowering {
            Some(low) => {
                debug_assert!(low.pattern == pattern, "lowering pattern mismatch");
                let n = low.active_prefix(end);
                for (ord, lvl) in low.ord.iter().zip(&low.lvl).take(n) {
                    let cell = cells
                        .get(num::idx(*ord))
                        .expect("invariant: lowering ordinals index the cell array it was built from");
                    add(cell, *lvl);
                }
            }
            None => {
                for cell in cells.iter().take(end) {
                    if cell.stored_bit(pattern, geometry) == cell.vulnerable_bit {
                        add(cell, cell.stress_matches(pattern, geometry));
                    }
                }
            }
        }
        let fail_hint = lanes.certain.len() + lanes.prob_idx.len() / 8 + lanes.vrt_idx.len();
        Self {
            key: PlanKey::new(pattern, interval, temp),
            end,
            t_secs: t,
            lanes: Arc::new(lanes),
            fail_hint,
        }
    }

    /// Every lane invariant the round loop relies on, recomputed from the
    /// μ/σ lanes: checked via `debug_assert!` so the redundant lanes stay
    /// live in all builds while costing nothing in release.
    pub(crate) fn lanes_consistent(&self) -> bool {
        let lanes = &self.lanes;
        let n = lanes.prob_idx.len();
        n == lanes.prob_mu.len()
            && n == lanes.prob_sigma.len()
            && n == lanes.prob_z.len()
            && n == lanes.prob_thr.len()
            && n == lanes.prob_thr_u.len()
            && lanes.vrt_slot.len() == lanes.vrt_idx.len()
            && lanes.vrt_thr.len() == lanes.vrt_slot.len() * 2
            && lanes.certain.len() + n + lanes.vrt_idx.len() <= self.end
            && (0..n).all(|i| {
                let (Some(mu), Some(sigma), Some(z), Some(thr), Some(thr_u)) = (
                    lanes.prob_mu.get(i),
                    lanes.prob_sigma.get(i),
                    lanes.prob_z.get(i),
                    lanes.prob_thr.get(i),
                    lanes.prob_thr_u.get(i),
                ) else {
                    return false;
                };
                ((self.t_secs - mu) / sigma).to_bits() == z.to_bits()
                    && phi(*z).to_bits() == thr.to_bits()
                    && u53_threshold(*thr) == *thr_u
            })
    }

    /// One round: extend with the certain failures, draw one uniform per
    /// in-band lane, then observe the VRT chains. Bit-identical to the
    /// scalar window scan at this condition.
    pub(crate) fn run_round(
        &mut self,
        base_vrt: &[TwoStateVrt],
        ctx: &TrialCtx,
    ) -> (Vec<u64>, Vec<(u32, TwoStateVrt)>) {
        debug_assert!(self.lanes_consistent(), "plan SoA lanes out of sync");
        let lanes = &self.lanes;
        let mut failures = Vec::with_capacity(self.fail_hint + self.fail_hint / 8 + 4);
        failures.extend_from_slice(&lanes.certain);

        // In-band non-VRT lanes: the branch-light hot scan. One hash lane,
        // one draw, one compare per cell.
        let n = lanes.prob_idx.len();
        if n < PAR_MIN_CELLS || reaper_exec::thread_count() <= 1 {
            scan_prob_range(lanes, ctx, 0..n, &mut failures);
        } else {
            // Fan out through the persistent pool: the shared lanes ride
            // an Arc clone and the ctx a copy, satisfying the pool's
            // 'static bound without touching unsafe.
            let shared = Arc::clone(&self.lanes);
            let ctx_c = *ctx;
            let chunks = reaper_exec::par_index_map_pooled(
                n,
                256,
                Arc::new(move |range: core::ops::Range<usize>| {
                    let mut out = Vec::new();
                    scan_prob_range(&shared, &ctx_c, range, &mut out);
                    out
                }),
            );
            for chunk in chunks {
                failures.extend(chunk);
            }
        }

        // VRT lanes: the chain is observed (and its advanced copy merged
        // back by the caller) every round, exactly like the scalar path;
        // the state selects which precompiled threshold applies.
        let mut vrt_updates = Vec::with_capacity(lanes.vrt_slot.len());
        for ((slot, idx), pair) in lanes
            .vrt_slot
            .iter()
            .zip(&lanes.vrt_idx)
            .zip(lanes.vrt_thr.chunks_exact(2))
        {
            let [thr_high, thr_low]: [f64; 2] = pair
                .try_into()
                .expect("invariant: vrt_thr holds two thresholds per cell");
            let mut lane = stream(&[ctx.stream_base, TRIAL_DOMAIN, ctx.nonce, *idx]);
            let mut vrt = *base_vrt
                .get(num::idx(*slot))
                .expect("invariant: plan VRT slots are positions pushed into base_vrt");
            let in_low = vrt.observe_at(ctx.now_ms, lane.next_f64());
            vrt_updates.push((*slot, vrt));
            let thr = if in_low { thr_low } else { thr_high };
            // Certain-fail consumes no uniform (matching the scalar draw
            // count); only in-band thresholds draw.
            let fails = if thr.to_bits() == CERTAIN_FAIL.to_bits() {
                true
            } else {
                thr.to_bits() != CERTAIN_PASS.to_bits() && lane.next_f64() < thr
            };
            if fails {
                failures.push(*idx);
            }
        }
        self.fail_hint = failures.len();
        (failures, vrt_updates)
    }

    /// Records the failure count of a kernel-evaluated round so the next
    /// capacity guess tracks reality (the batch kernel sizes its own
    /// vectors from exact popcounts but keeps the hint warm for any
    /// single-round call that follows).
    pub(crate) fn note_round_failures(&mut self, count: usize) {
        self.fail_hint = count;
    }
}

/// The single-round in-band scan over `prob` lane range `range`,
/// appending failing cell indices to `out`. Free function (not a
/// closure) so the inline and pooled dispatch paths share one body.
fn scan_prob_range(
    lanes: &PlanLanes,
    ctx: &TrialCtx,
    range: core::ops::Range<usize>,
    out: &mut Vec<u64>,
) {
    let idx_lane = lanes
        .prob_idx
        .get(range.clone())
        .expect("invariant: scan ranges are within [0, len)");
    let thr_lane = lanes
        .prob_thr
        .get(range)
        .expect("invariant: prob lanes are index-aligned");
    for (idx, thr) in idx_lane.iter().zip(thr_lane) {
        let mut lane = stream(&[ctx.stream_base, TRIAL_DOMAIN, ctx.nonce, *idx]);
        if lane.next_f64() < *thr {
            out.push(*idx);
        }
    }
}

/// Compiled plans kept per chip.
const PLAN_CAP: usize = 16;
/// Pattern lowerings kept per chip.
const LOWERING_CAP: usize = 16;
/// First-sighting records kept per chip (Auto promotion bookkeeping).
const SEEN_CAP: usize = 64;

/// Per-chip cache of lowerings and compiled plans, plus the Auto engine's
/// first-sighting bookkeeping. All lookups are linear scans over short
/// `Vec`s — deterministic iteration order (lint rule D1) and faster than
/// any map at these sizes. Recency is tracked with a logical tick, never
/// wall-clock time (lint rule D2).
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanCache {
    /// Chip epoch the plan tier is valid for; see `roll_epoch`.
    epoch: u64,
    tick: u64,
    plan_seen: Vec<(PlanKey, u64)>,
    plans: Vec<(u64, TrialPlan)>,
    pattern_seen: Vec<(DataPattern, u64)>,
    lowerings: Vec<(u64, PatternLowering)>,
    pub(crate) stats: PlanStats,
}

fn note_seen<K: PartialEq>(seen: &mut Vec<(K, u64)>, key: K, tick: u64) -> bool {
    if let Some(entry) = seen.iter_mut().find(|(k, _)| *k == key) {
        entry.1 = tick;
        return true;
    }
    if seen.len() >= SEEN_CAP {
        evict_min_tick(seen, |(_, tick)| *tick);
    }
    seen.push((key, tick));
    false
}

/// Evicts the entry with the smallest logical tick. Ties on equal ticks
/// break toward the lowest position — `min_by_key` keeps the first
/// minimum — i.e. the earliest-inserted entry goes first. One helper
/// serves both entry layouts (`(key, tick)` sighting lists and
/// `(tick, value)` cache lists) via `tick_of`, so the two tie-breaking
/// policies cannot drift apart.
fn evict_min_tick<T>(entries: &mut Vec<T>, tick_of: impl Fn(&T) -> u64) {
    if let Some(pos) = entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| tick_of(e))
        .map(|(i, _)| i)
    {
        entries.swap_remove(pos);
    }
}

impl PlanCache {
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Synchronizes the cache with the chip's plan epoch. On a mismatch
    /// the compiled-plan tier (plans + their sighting records) is dropped;
    /// lowerings are kept — they are pure functions of the immutable cell
    /// array and a pattern, so no time advance or VRT merge can stale them.
    pub(crate) fn roll_epoch(&mut self, chip_epoch: u64) {
        if self.epoch == chip_epoch {
            return;
        }
        self.epoch = chip_epoch;
        if !self.plans.is_empty() {
            self.stats.invalidations += 1;
        }
        self.plans.clear();
        self.plan_seen.clear();
    }

    /// True (and records the sighting) if this exact condition was seen
    /// before within the current epoch.
    pub(crate) fn note_plan_key(&mut self, key: PlanKey) -> bool {
        let tick = self.bump();
        note_seen(&mut self.plan_seen, key, tick)
    }

    /// True (and records the sighting) if this pattern was seen before.
    pub(crate) fn note_pattern(&mut self, pattern: DataPattern) -> bool {
        let tick = self.bump();
        note_seen(&mut self.pattern_seen, pattern, tick)
    }

    pub(crate) fn find_plan(&mut self, key: &PlanKey) -> Option<usize> {
        let pos = self.plans.iter().position(|(_, p)| p.key == *key)?;
        let tick = self.bump();
        self.plans
            .get_mut(pos)
            .expect("invariant: position() yields an in-bounds index")
            .0 = tick;
        Some(pos)
    }

    pub(crate) fn insert_plan(&mut self, plan: TrialPlan) -> usize {
        if self.plans.len() >= PLAN_CAP {
            evict_min_tick(&mut self.plans, |(tick, _)| *tick);
        }
        let tick = self.bump();
        self.plans.push((tick, plan));
        self.plans.len() - 1
    }

    /// Mutable plan access for round execution (`run_round`/`run_rounds`
    /// update the plan's failure-capacity hint as a side effect).
    pub(crate) fn plan_at_mut(&mut self, i: usize) -> &mut TrialPlan {
        self.plans
            .get_mut(i)
            .map(|(_, p)| p)
            .expect("invariant: plan indices come from find/insert with no eviction in between")
    }

    pub(crate) fn find_lowering(&mut self, pattern: DataPattern) -> Option<usize> {
        let pos = self
            .lowerings
            .iter()
            .position(|(_, l)| l.pattern == pattern)?;
        let tick = self.bump();
        self.lowerings
            .get_mut(pos)
            .expect("invariant: position() yields an in-bounds index")
            .0 = tick;
        Some(pos)
    }

    /// Borrow-only lookup for contexts that hold other borrows (plan
    /// compilation); does not touch recency.
    pub(crate) fn peek_lowering(&self, pattern: DataPattern) -> Option<&PatternLowering> {
        self.lowerings
            .iter()
            .find(|(_, l)| l.pattern == pattern)
            .map(|(_, l)| l)
    }

    pub(crate) fn insert_lowering(&mut self, lowering: PatternLowering) -> usize {
        if self.lowerings.len() >= LOWERING_CAP {
            evict_min_tick(&mut self.lowerings, |(tick, _)| *tick);
        }
        let tick = self.bump();
        self.lowerings.push((tick, lowering));
        self.lowerings.len() - 1
    }

    pub(crate) fn lowering_at(&self, i: usize) -> &PatternLowering {
        self.lowerings
            .get(i)
            .map(|(_, l)| l)
            .expect("invariant: lowering indices come from find/insert with no eviction in between")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::SimulatedChip;
    use reaper_dram_model::Vendor;

    fn quick_chip() -> SimulatedChip {
        let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16);
        SimulatedChip::new(cfg, 0xBC417)
    }

    #[test]
    fn threshold_sentinels_bracket_phi_range() {
        assert_eq!(threshold_of(-4.5), CERTAIN_PASS);
        assert_eq!(threshold_of(4.5), CERTAIN_FAIL);
        let t = threshold_of(0.0);
        assert!((t - 0.5).abs() < 1e-12);
        // boundary values stay in-band, matching the scalar strict compares
        assert!(threshold_of(-Z_CUTOFF) > 0.0 && threshold_of(-Z_CUTOFF) < 1.0);
        assert!(threshold_of(Z_CUTOFF) > 0.0 && threshold_of(Z_CUTOFF) < 1.0);
    }

    #[test]
    fn lowering_matches_per_cell_predicates() {
        let chip = quick_chip();
        let pattern = reaper_dram_model::DataPattern::checkerboard();
        let geometry = chip.geometry();
        let low = PatternLowering::build(chip.cells(), pattern, geometry);
        assert_eq!(low.ord.len(), low.lvl.len());
        let mut k = 0;
        for (i, cell) in chip.cells().iter().enumerate() {
            let active = cell.stored_bit(pattern, geometry) == cell.vulnerable_bit;
            if active {
                assert_eq!(num::idx(*low.ord.get(k).expect("lane")), i);
                assert_eq!(
                    *low.lvl.get(k).expect("lane"),
                    cell.stress_matches(pattern, geometry)
                );
                k += 1;
            }
        }
        assert_eq!(k, low.ord.len());
        // ordinals ascending => window prefix is exact
        let end = chip.cells().len() / 3;
        let n = low.active_prefix(end);
        assert!(low.ord.iter().take(n).all(|&o| num::idx(o) < end));
        assert!(low.ord.iter().skip(n).all(|&o| num::idx(o) >= end));
    }

    #[test]
    fn compile_with_and_without_lowering_is_identical() {
        let chip = quick_chip();
        let pattern = reaper_dram_model::DataPattern::row_stripe();
        let interval = Ms::new(1024.0);
        let temp = Celsius::new(60.0);
        let low = PatternLowering::build(chip.cells(), pattern, chip.geometry());
        let direct = TrialPlan::compile(
            chip.config(),
            chip.cells(),
            chip.sort_keys_for_tests(),
            None,
            pattern,
            interval,
            temp,
        );
        let via_lowering = TrialPlan::compile(
            chip.config(),
            chip.cells(),
            chip.sort_keys_for_tests(),
            Some(&low),
            pattern,
            interval,
            temp,
        );
        assert_eq!(direct, via_lowering);
        assert!(direct.lanes_consistent());
        // the three classes partition the polarity-active window
        let lanes = &direct.lanes;
        let n_lanes = lanes.certain.len() + lanes.prob_idx.len() + lanes.vrt_idx.len();
        assert!(n_lanes <= direct.end);
        assert!(!lanes.prob_idx.is_empty(), "expected in-band cells");
    }

    #[test]
    fn eviction_takes_min_tick_and_breaks_ties_by_insertion_order() {
        // Distinct ticks: the smallest goes, wherever it sits.
        let mut entries = vec![("b", 7u64), ("a", 3), ("c", 9)];
        evict_min_tick(&mut entries, |(_, tick)| *tick);
        let keys: Vec<&str> = entries.iter().map(|(k, _)| *k).collect();
        assert!(!keys.contains(&"a"));
        assert_eq!(keys.len(), 2);

        // Tie on equal ticks: the earliest-inserted (lowest position)
        // minimum is evicted, not a later duplicate.
        let mut tied = vec![("first", 5u64), ("second", 5), ("newer", 9)];
        evict_min_tick(&mut tied, |(_, tick)| *tick);
        let keys: Vec<&str> = tied.iter().map(|(k, _)| *k).collect();
        assert!(!keys.contains(&"first"), "tie must evict the first minimum");
        assert!(keys.contains(&"second"));
        assert!(keys.contains(&"newer"));

        // Same policy through the (tick, value) layout used by the plan
        // and lowering caches.
        let mut front = vec![(4u64, "first"), (4, "second"), (8, "newer")];
        evict_min_tick(&mut front, |(tick, _)| *tick);
        let vals: Vec<&str> = front.iter().map(|(_, v)| *v).collect();
        assert!(!vals.contains(&"first"));
        assert_eq!(vals.len(), 2);

        // Empty list: a no-op, not a panic.
        let mut empty: Vec<(u64, u8)> = Vec::new();
        evict_min_tick(&mut empty, |(tick, _)| *tick);
        assert!(empty.is_empty());
    }

    #[test]
    fn cache_promotes_on_second_sighting_and_rolls_epoch() {
        let mut cache = PlanCache::default();
        let key = PlanKey::new(
            reaper_dram_model::DataPattern::solid0(),
            Ms::new(512.0),
            Celsius::new(45.0),
        );
        assert!(!cache.note_plan_key(key));
        assert!(cache.note_plan_key(key));
        let pat = reaper_dram_model::DataPattern::solid1();
        assert!(!cache.note_pattern(pat));
        assert!(cache.note_pattern(pat));

        let chip = quick_chip();
        let plan = TrialPlan::compile(
            chip.config(),
            chip.cells(),
            chip.sort_keys_for_tests(),
            None,
            reaper_dram_model::DataPattern::solid0(),
            Ms::new(512.0),
            Celsius::new(45.0),
        );
        let low = PatternLowering::build(
            chip.cells(),
            reaper_dram_model::DataPattern::solid1(),
            chip.geometry(),
        );
        let pi = cache.insert_plan(plan);
        let li = cache.insert_lowering(low);
        assert!(cache.find_plan(&key).is_some());
        assert_eq!(cache.plan_at_mut(pi).key, key);
        assert!(cache.find_lowering(pat).is_some());
        assert_eq!(cache.lowering_at(li).pattern, pat);

        // epoch roll: plan tier dropped, lowerings survive
        cache.roll_epoch(1);
        assert!(cache.find_plan(&key).is_none());
        assert!(!cache.note_plan_key(key), "plan sightings reset");
        assert!(cache.find_lowering(pat).is_some());
        assert_eq!(cache.stats.invalidations, 1);
        // same epoch again: nothing more dropped
        cache.roll_epoch(1);
        assert_eq!(cache.stats.invalidations, 1);
    }

    #[test]
    fn cache_caps_are_enforced() {
        let mut cache = PlanCache::default();
        for i in 0..(SEEN_CAP + 8) {
            let key = PlanKey::new(
                reaper_dram_model::DataPattern::random(i as u64),
                Ms::new(512.0),
                Celsius::new(45.0),
            );
            cache.note_plan_key(key);
        }
        assert_eq!(cache.plan_seen.len(), SEEN_CAP);

        let chip = quick_chip();
        for i in 0..(PLAN_CAP + 4) {
            let plan = TrialPlan::compile(
                chip.config(),
                chip.cells(),
                chip.sort_keys_for_tests(),
                None,
                reaper_dram_model::DataPattern::random(i as u64),
                Ms::new(512.0),
                Celsius::new(45.0),
            );
            cache.insert_plan(plan);
        }
        assert_eq!(cache.plans.len(), PLAN_CAP);
        for i in 0..(LOWERING_CAP + 4) {
            let low = PatternLowering::build(
                chip.cells(),
                reaper_dram_model::DataPattern::random(i as u64),
                chip.geometry(),
            );
            cache.insert_lowering(low);
        }
        assert_eq!(cache.lowerings.len(), LOWERING_CAP);
    }
}
