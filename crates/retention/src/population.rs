//! Chip populations: the simulated counterpart of the paper's 368-chip,
//! three-vendor study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reaper_dram_model::Vendor;

use crate::chip::SimulatedChip;
use crate::config::RetentionConfig;

/// A population of simulated chips spanning the three vendors.
///
/// # Example
/// ```
/// use reaper_retention::ChipPopulation;
///
/// // A small, fast population (not the full 368-chip study).
/// let pop = ChipPopulation::sample_study(9, 42);
/// assert_eq!(pop.len(), 9);
/// assert_eq!(pop.chips_of(reaper_dram_model::Vendor::A).count(), 3);
/// ```
#[derive(Debug)]
pub struct ChipPopulation {
    chips: Vec<SimulatedChip>,
}

impl ChipPopulation {
    /// Builds a population from explicit per-vendor counts, using
    /// paper-calibrated configs modified by `tweak`.
    ///
    /// Chip-to-chip variation: each chip's BER magnitude and tail exponent
    /// are jittered (±20 % and ±0.1 respectively) so the population spreads
    /// like Fig. 4's error bars.
    pub fn with_counts<F>(counts: [(Vendor, usize); 3], seed: u64, mut tweak: F) -> Self
    where
        F: FnMut(RetentionConfig) -> RetentionConfig,
    {
        let mut seeder = StdRng::seed_from_u64(seed);
        let mut chips = Vec::new();
        for (vendor, count) in counts {
            for _ in 0..count {
                let mut cfg = tweak(RetentionConfig::for_vendor(vendor));
                let jitter_ber: f64 = 0.8 + 0.4 * seeder.random::<f64>();
                let jitter_exp: f64 = (seeder.random::<f64>() - 0.5) * 0.2;
                cfg.ber_at_1024ms *= jitter_ber;
                cfg.ber_exponent += jitter_exp;
                let chip_seed: u64 = seeder.random();
                chips.push(SimulatedChip::new(cfg, chip_seed));
            }
        }
        Self { chips }
    }

    /// The full 368-chip study: 124 Vendor A, 124 Vendor B, 120 Vendor C,
    /// with capacity scaled down by `capacity_div` to keep sweeps fast
    /// (BER and rates are intensive quantities, invariant to this scale).
    pub fn paper_study(capacity_div: u64, seed: u64) -> Self {
        Self::with_counts(
            [(Vendor::A, 124), (Vendor::B, 124), (Vendor::C, 120)],
            seed,
            |cfg| cfg.with_capacity_scale(1, capacity_div),
        )
    }

    /// A reduced population of `n` chips (rounded up to a multiple of 3),
    /// split evenly across vendors, at 1/16 capacity. Intended for tests
    /// and quick experiment modes.
    pub fn sample_study(n: usize, seed: u64) -> Self {
        let per = n.div_ceil(3);
        let pop = Self::with_counts(
            [(Vendor::A, per), (Vendor::B, per), (Vendor::C, per)],
            seed,
            |cfg| cfg.with_capacity_scale(1, 16),
        );
        Self {
            chips: pop.chips.into_iter().take(per * 3).collect(),
        }
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Immutable view of all chips.
    pub fn chips(&self) -> &[SimulatedChip] {
        &self.chips
    }

    /// Mutable view of all chips (trials need `&mut`).
    pub fn chips_mut(&mut self) -> &mut [SimulatedChip] {
        &mut self.chips
    }

    /// Iterates over chips of one vendor.
    pub fn chips_of(&self, vendor: Vendor) -> impl Iterator<Item = &SimulatedChip> {
        self.chips
            .iter()
            .filter(move |c| c.config().vendor == vendor)
    }

    /// Mutably iterates over chips of one vendor.
    pub fn chips_of_mut(&mut self, vendor: Vendor) -> impl Iterator<Item = &mut SimulatedChip> {
        self.chips
            .iter_mut()
            .filter(move |c| c.config().vendor == vendor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_study_is_368_chips() {
        // Build at tiny capacity so this test stays fast.
        let pop = ChipPopulation::paper_study(256, 1);
        assert_eq!(pop.len(), 368);
        assert_eq!(pop.chips_of(Vendor::A).count(), 124);
        assert_eq!(pop.chips_of(Vendor::B).count(), 124);
        assert_eq!(pop.chips_of(Vendor::C).count(), 120);
        assert!(!pop.is_empty());
    }

    #[test]
    fn sample_study_splits_evenly() {
        let pop = ChipPopulation::sample_study(10, 2);
        // rounded up to 12
        assert_eq!(pop.len(), 12);
        for v in Vendor::ALL {
            assert_eq!(pop.chips_of(v).count(), 4);
        }
    }

    #[test]
    fn chips_vary_within_a_vendor() {
        let pop = ChipPopulation::sample_study(6, 3);
        let bers: Vec<f64> = pop
            .chips_of(Vendor::B)
            .map(|c| c.config().ber_at_1024ms)
            .collect();
        assert!(bers.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ChipPopulation::sample_study(3, 7);
        let b = ChipPopulation::sample_study(3, 7);
        for (ca, cb) in a.chips().iter().zip(b.chips()) {
            assert_eq!(ca.cells(), cb.cells());
        }
    }

    #[test]
    fn chips_mut_allows_trials() {
        use reaper_dram_model::{Celsius, DataPattern, Ms};
        let mut pop = ChipPopulation::sample_study(3, 8);
        for chip in pop.chips_mut() {
            let _ = chip.retention_trial(
                DataPattern::checkerboard(),
                Ms::new(1024.0),
                Celsius::new(45.0),
            );
        }
    }
}
