//! SPD-style retention characterization records (paper §6.3).
//!
//! "It would be reasonable for vendors to provide this data in the on-DIMM
//! serial presence detect (SPD)." This module defines that record: the
//! handful of fitted parameters a reach-profiling system needs to plan its
//! conditions, with a compact text encoding (SPD payloads are tiny) and a
//! lossless round trip back into a simulator configuration.

use reaper_dram_model::Vendor;

use crate::config::RetentionConfig;

/// The retention data sheet of one chip — what §6.3 wishes lived in SPD.
#[derive(Debug, Clone, PartialEq)]
pub struct SpdRecord {
    /// Vendor identity.
    pub vendor: Vendor,
    /// BER at 1024 ms at the reference conditions.
    pub ber_at_1024ms: f64,
    /// BER power-law exponent β.
    pub ber_exponent: f64,
    /// Eq. 1 temperature coefficient k (per °C).
    pub temp_coefficient: f64,
    /// VRT accumulation rate at 1024 ms (cells/hour per 2 GB).
    pub vrt_rate_at_1024ms: f64,
    /// VRT accumulation exponent b.
    pub vrt_exponent: f64,
}

/// Errors from decoding an SPD record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpdError {
    /// A required field was absent.
    MissingField(&'static str),
    /// A field failed to parse.
    BadValue(&'static str),
    /// The vendor code was not A/B/C.
    UnknownVendor(String),
}

impl core::fmt::Display for SpdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpdError::MissingField(k) => write!(f, "missing SPD field `{k}`"),
            SpdError::BadValue(k) => write!(f, "unparseable SPD field `{k}`"),
            SpdError::UnknownVendor(v) => write!(f, "unknown vendor code `{v}`"),
        }
    }
}

impl std::error::Error for SpdError {}

impl SpdRecord {
    /// Extracts the record from a simulator configuration (what a vendor's
    /// production characterization would measure on real silicon).
    pub fn from_config(cfg: &RetentionConfig) -> Self {
        Self {
            vendor: cfg.vendor,
            ber_at_1024ms: cfg.ber_at_1024ms,
            ber_exponent: cfg.ber_exponent,
            temp_coefficient: cfg.vendor.temperature_coefficient(),
            vrt_rate_at_1024ms: cfg.vrt_rate_at_1024ms_per_hour,
            vrt_exponent: cfg.vrt_rate_exponent,
        }
    }

    /// Encodes the record as a compact `key=value` block.
    pub fn encode(&self) -> String {
        format!(
            "REAPER-SPD v1\nvendor={}\nber1024={:e}\nber_exp={}\ntemp_k={}\nvrt_rate={}\nvrt_exp={}\n",
            self.vendor.name(),
            self.ber_at_1024ms,
            self.ber_exponent,
            self.temp_coefficient,
            self.vrt_rate_at_1024ms,
            self.vrt_exponent,
        )
    }

    /// Decodes a record previously produced by [`SpdRecord::encode`].
    ///
    /// # Errors
    /// Returns [`SpdError`] for missing/corrupt fields or unknown vendors.
    pub fn decode(text: &str) -> Result<Self, SpdError> {
        let get = |key: &'static str| -> Result<String, SpdError> {
            text.lines()
                .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .map(str::to_string)
                .ok_or(SpdError::MissingField(key))
        };
        let vendor = match get("vendor")?.as_str() {
            "A" => Vendor::A,
            "B" => Vendor::B,
            "C" => Vendor::C,
            other => return Err(SpdError::UnknownVendor(other.to_string())),
        };
        let parse = |key: &'static str, raw: String| -> Result<f64, SpdError> {
            raw.parse().map_err(|_| SpdError::BadValue(key))
        };
        Ok(Self {
            vendor,
            ber_at_1024ms: parse("ber1024", get("ber1024")?)?,
            ber_exponent: parse("ber_exp", get("ber_exp")?)?,
            temp_coefficient: parse("temp_k", get("temp_k")?)?,
            vrt_rate_at_1024ms: parse("vrt_rate", get("vrt_rate")?)?,
            vrt_exponent: parse("vrt_exp", get("vrt_exp")?)?,
        })
    }

    /// Builds a simulator configuration from the record (vendor defaults
    /// for the unobservable micro-parameters, record values for the
    /// macroscopic fits).
    pub fn to_config(&self) -> RetentionConfig {
        let mut cfg = RetentionConfig::for_vendor(self.vendor);
        cfg.ber_at_1024ms = self.ber_at_1024ms;
        cfg.ber_exponent = self.ber_exponent;
        cfg.vrt_rate_at_1024ms_per_hour = self.vrt_rate_at_1024ms;
        cfg.vrt_rate_exponent = self.vrt_exponent;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in Vendor::ALL {
            let cfg = RetentionConfig::for_vendor(v);
            let rec = SpdRecord::from_config(&cfg);
            let decoded = SpdRecord::decode(&rec.encode()).unwrap();
            assert_eq!(rec, decoded, "{v}");
        }
    }

    #[test]
    fn to_config_preserves_macroscopic_fits() {
        let mut cfg = RetentionConfig::for_vendor(Vendor::C);
        cfg.ber_at_1024ms = 3.3e-7;
        cfg.ber_exponent = 2.71;
        let rec = SpdRecord::from_config(&cfg);
        let rebuilt = SpdRecord::decode(&rec.encode()).unwrap().to_config();
        assert_eq!(rebuilt.ber_at_1024ms, 3.3e-7);
        assert_eq!(rebuilt.ber_exponent, 2.71);
        assert_eq!(rebuilt.vendor, Vendor::C);
        rebuilt.validate().unwrap();
    }

    #[test]
    fn decode_errors_are_specific() {
        assert_eq!(
            SpdRecord::decode("vendor=B\n"),
            Err(SpdError::MissingField("ber1024"))
        );
        let good = SpdRecord::from_config(&RetentionConfig::for_vendor(Vendor::A)).encode();
        let corrupt = good.replace("vendor=A", "vendor=Z");
        assert_eq!(
            SpdRecord::decode(&corrupt),
            Err(SpdError::UnknownVendor("Z".to_string()))
        );
        let corrupt = good.replace("ber_exp=2.4", "ber_exp=fish");
        assert_eq!(SpdRecord::decode(&corrupt), Err(SpdError::BadValue("ber_exp")));
        // Error display.
        assert!(SpdError::MissingField("x").to_string().contains('x'));
    }
}
