//! Variable-retention-time (VRT) machinery.
//!
//! The paper characterizes VRT as *ubiquitous and unpredictable*: a cell's
//! retention time alternates between states with memoryless dwell times
//! (§2.3.1), producing (1) trial-to-trial inconsistency among known weak
//! cells and (2) a steady stream of *brand-new* failing cells that keeps the
//! failure profile decaying (§5.3, Figs. 3–4). Both effects are modeled
//! here:
//!
//! * [`TwoStateVrt`] — a continuous-time two-state Markov chain, advanced
//!   lazily with the closed-form transition probability, attached to ~2 % of
//!   base weak cells,
//! * [`ArrivalCell`] — a newly-arrived VRT failing cell (Poisson arrivals,
//!   rate `A(t) = a·t^b` per Fig. 4) with a finite active lifetime so the
//!   failing-set size stays stable (Fig. 3: accumulation ≈ departure).

use crate::cell::WeakCell;
use rand::Rng;

/// A continuous-time two-state retention process: the cell dwells in a
/// *high*-retention state and a *low*-retention state with exponential dwell
/// times; the low state multiplies the cell's μ by a factor < 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStateVrt {
    /// True if the cell is currently in the low-retention state.
    in_low: bool,
    /// Wall-clock time (ms) of the last state observation.
    last_update_ms: f64,
    /// Mean dwell time in the low state (ms).
    dwell_low_ms: f64,
    /// Mean dwell time in the high state (ms).
    dwell_high_ms: f64,
}

impl TwoStateVrt {
    /// Creates a process with the given mean dwell times, starting in the
    /// high state at time `now_ms`.
    ///
    /// # Panics
    /// Panics if either dwell time is not positive.
    pub fn new(dwell_low_ms: f64, dwell_high_ms: f64, now_ms: f64) -> Self {
        assert!(dwell_low_ms > 0.0, "dwell_low_ms must be positive");
        assert!(dwell_high_ms > 0.0, "dwell_high_ms must be positive");
        Self {
            in_low: false,
            last_update_ms: now_ms,
            dwell_low_ms,
            dwell_high_ms,
        }
    }

    /// Stationary probability of being in the low state.
    pub fn duty_low(&self) -> f64 {
        self.dwell_low_ms / (self.dwell_low_ms + self.dwell_high_ms)
    }

    /// Observes the state at wall-clock `now_ms`, advancing the chain with
    /// the exact two-state transition law:
    /// `P(low at t+Δ) = π_L + (s − π_L)·e^{−(λ₁+λ₂)Δ}` where `s` is the
    /// current indicator and `π_L` the stationary low probability.
    ///
    /// Returns whether the cell is in the low-retention state now.
    pub fn observe<R: Rng + ?Sized>(&mut self, now_ms: f64, rng: &mut R) -> bool {
        let u = rng.random::<f64>();
        self.observe_at(now_ms, u)
    }

    /// Like [`TwoStateVrt::observe`], but takes the uniform draw explicitly
    /// instead of a generator. This is what makes parallel trials
    /// deterministic: the caller derives `u` from a per-(cell, trial) hash
    /// stream, so the observed state is independent of evaluation order.
    ///
    /// `u` is ignored when no time has elapsed since the last observation.
    pub fn observe_at(&mut self, now_ms: f64, u: f64) -> bool {
        let dt = (now_ms - self.last_update_ms).max(0.0);
        if dt > 0.0 {
            let rate = 1.0 / self.dwell_low_ms + 1.0 / self.dwell_high_ms;
            let pi_low = self.duty_low();
            let s = if self.in_low { 1.0 } else { 0.0 };
            let p_low = pi_low + (s - pi_low) * (-rate * dt).exp();
            self.in_low = u < p_low;
            self.last_update_ms = now_ms;
        }
        self.in_low
    }

    /// Forces the state (used when an arrival is first observed failing).
    pub fn force_state(&mut self, in_low: bool, now_ms: f64) {
        self.in_low = in_low;
        self.last_update_ms = now_ms;
    }
}

/// A newly-arrived VRT failing cell (paper §5.3's "steady-state
/// accumulation" population).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalCell {
    /// The cell's retention phenotype while active. Its `mu0` sits in the
    /// failing range of the interval that spawned it.
    pub cell: WeakCell,
    /// Wall-clock ms at which the cell's retention state migrates back out
    /// of the failing range (departure process).
    pub expires_at_ms: f64,
    /// Wall-clock ms of arrival.
    pub arrived_at_ms: f64,
    /// Duty-cycling process for post-arrival trials.
    pub vrt: TwoStateVrt,
    /// True until the first trial observes (and thereby "discovers") it.
    pub fresh: bool,
}

impl ArrivalCell {
    /// Whether the cell is still in its active (failing-capable) lifetime.
    pub fn is_active(&self, now_ms: f64) -> bool {
        now_ms < self.expires_at_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn duty_cycle_matches_dwell_ratio() {
        let v = TwoStateVrt::new(100.0, 900.0, 0.0);
        assert!((v.duty_low() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn long_horizon_observation_reaches_stationarity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lows = 0;
        let n = 20_000;
        for i in 0..n {
            let mut v = TwoStateVrt::new(100.0, 900.0, 0.0);
            // observe far beyond mixing time
            if v.observe(1e9 + i as f64, &mut rng) {
                lows += 1;
            }
        }
        let frac = lows as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "low fraction {frac}");
    }

    #[test]
    fn zero_elapsed_time_is_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = TwoStateVrt::new(10.0, 10.0, 5.0);
        v.force_state(true, 5.0);
        // No time elapsed: state must not change regardless of RNG.
        for _ in 0..100 {
            assert!(v.observe(5.0, &mut rng));
        }
    }

    #[test]
    fn short_horizon_tends_to_persist() {
        let mut rng = StdRng::seed_from_u64(2);
        // dwell times of 1 hour; observe after 1ms: should essentially
        // always stay in the current state.
        let mut stays = 0;
        for _ in 0..1000 {
            let mut v = TwoStateVrt::new(3.6e6, 3.6e6, 0.0);
            v.force_state(true, 0.0);
            if v.observe(1.0, &mut rng) {
                stays += 1;
            }
        }
        assert!(stays > 990, "stays = {stays}");
    }

    #[test]
    #[should_panic(expected = "dwell_low_ms")]
    fn rejects_nonpositive_dwell() {
        TwoStateVrt::new(0.0, 1.0, 0.0);
    }

    #[test]
    fn arrival_activity_window() {
        let cell = WeakCell {
            index: 0,
            mu0: 1.0,
            sigma0: 0.05,
            vulnerable_bit: false,
            dpd_strength: 0.0,
            dpd_signature: 0,
            vrt_index: None,
        };
        let a = ArrivalCell {
            cell,
            expires_at_ms: 100.0,
            arrived_at_ms: 0.0,
            vrt: TwoStateVrt::new(1.0, 9.0, 0.0),
            fresh: true,
        };
        assert!(a.is_active(50.0));
        assert!(!a.is_active(100.0));
        assert!(!a.is_active(150.0));
    }
}
