//! Prefix bit-identity of the cancellable trial entry points: whatever a
//! cancelled run returns must be an exact prefix of the uncancelled run's
//! outcomes, and a pre-cancelled token must stop the run before any
//! kernel batch executes.

use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_exec::cancel::CancelToken;
use reaper_retention::{RetentionConfig, SimulatedChip};

fn small_chip(seed: u64) -> SimulatedChip {
    let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 64);
    SimulatedChip::new(cfg, seed)
}

#[test]
fn pre_cancelled_rounds_run_produces_nothing() {
    let mut chip = small_chip(7);
    let token = CancelToken::new();
    token.cancel();
    let run = chip.retention_trial_batches_cancellable(
        DataPattern::checkerboard(),
        Ms::new(2048.0),
        Celsius::new(45.0),
        12,
        4,
        &token,
    );
    assert!(run.cancelled);
    assert!(run.outcomes.is_empty(), "no batch may run after a pre-cancel");
}

#[test]
fn mid_run_cancellation_returns_a_bit_identical_rounds_prefix() {
    // Reference: the full uncancelled run.
    let mut reference = small_chip(7);
    let full = reference.retention_trial_rounds(
        DataPattern::checkerboard(),
        Ms::new(2048.0),
        Celsius::new(45.0),
        16,
    );
    assert_eq!(full.len(), 16);

    // Cancelled run: a helper thread races the kernel; wherever the stop
    // lands, the result must be an exact prefix, in whole batches of 4.
    let mut chip = small_chip(7);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || token.cancel())
    };
    let run = chip.retention_trial_batches_cancellable(
        DataPattern::checkerboard(),
        Ms::new(2048.0),
        Celsius::new(45.0),
        16,
        4,
        &token,
    );
    canceller.join().expect("canceller thread");
    assert_eq!(run.outcomes.len() % 4, 0, "cancellation lands on batch boundaries");
    assert_eq!(
        run.outcomes.as_slice(),
        &full[..run.outcomes.len()],
        "cancelled outcomes must be a bit-identical prefix"
    );
    assert_eq!(run.cancelled, run.outcomes.len() < 16);
}

#[test]
fn schedule_cancellation_returns_a_bit_identical_schedule_prefix() {
    let schedule: Vec<_> = (0..12)
        .map(|i| {
            let pattern = if i % 2 == 0 {
                DataPattern::checkerboard()
            } else {
                DataPattern::solid1()
            };
            (pattern, Ms::new(2048.0), Celsius::new(45.0))
        })
        .collect();

    let mut reference = small_chip(11);
    let full = reference.retention_trial_schedule(&schedule, 3);
    assert_eq!(full.len(), 12);

    let mut chip = small_chip(11);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || token.cancel())
    };
    let run = chip.retention_trial_schedule_cancellable(&schedule, 3, &token);
    canceller.join().expect("canceller thread");
    assert_eq!(
        run.outcomes.as_slice(),
        &full[..run.outcomes.len()],
        "cancelled schedule outcomes must be a bit-identical prefix"
    );
    assert_eq!(run.cancelled, run.outcomes.len() < 12);
}

#[test]
fn uncancelled_cancellable_run_matches_the_plain_entry_point() {
    let schedule: Vec<_> = (0..8)
        .map(|_| (DataPattern::checkerboard(), Ms::new(1024.0), Celsius::new(45.0)))
        .collect();
    let mut a = small_chip(3);
    let mut b = small_chip(3);
    let plain = a.retention_trial_schedule(&schedule, 5);
    let run = b.retention_trial_schedule_cancellable(&schedule, 5, &CancelToken::new());
    assert!(!run.cancelled);
    assert_eq!(run.outcomes, plain);
}
