//! Fuzz + property suite for the `RPD1` delta codec, per the ISSUE's
//! hardening contract: truncation, varint overflow, out-of-order
//! deltas, and chunk-ID mismatch must all surface as `Err` — the
//! decoder never panics and never silently misdecodes. The oracle is
//! the same as the `RPF1` one: any accepted message re-encodes
//! byte-identically, so there is exactly one wire form per delta.

#![allow(clippy::expect_used, clippy::unwrap_used)]
// Fuzz bytes are masked to 8 bits before narrowing.
#![allow(clippy::cast_possible_truncation)]

use std::collections::BTreeSet;

use proptest::prelude::*;
use reaper_exec::rng::SplitMix64;
use reaper_retention::delta::{
    chunk_id_of, content_hash, encode_message, push_varint, DeltaApplyError, DeltaCodecError,
    ProfileDelta,
};

fn arb_cells(max_len: usize) -> impl Strategy<Value = BTreeSet<u64>> {
    proptest::collection::btree_set(any::<u64>(), 0..max_len)
}

/// Builds a delta between two arbitrary sets with hashes derived the
/// same way the store derives them (content hash of hypothetical
/// encodings — here just hashes of marker bytes, which the codec treats
/// as opaque).
fn delta_of(base: &BTreeSet<u64>, next: &BTreeSet<u64>, base_epoch: u64) -> ProfileDelta {
    ProfileDelta::compute(
        base.iter().copied(),
        next.iter().copied(),
        base_epoch,
        base_epoch + 1,
        content_hash(b"base-marker"),
        content_hash(b"next-marker"),
    )
}

/// Decode must either reject the bytes or return a delta whose
/// re-encoding is exactly the input — no second wire form is accepted.
fn assert_canonical_or_err(bytes: &[u8]) {
    if let Ok(delta) = ProfileDelta::from_bytes(bytes) {
        assert_eq!(
            delta.to_bytes(),
            bytes,
            "accepted a non-canonical RPD1 encoding"
        );
    }
}

proptest! {
    /// Compute → encode → decode → apply closes the loop for arbitrary
    /// set pairs.
    #[test]
    fn compute_encode_decode_apply_roundtrips(
        base in arb_cells(64),
        next in arb_cells(64),
    ) {
        let delta = delta_of(&base, &next, 7);
        let wire = delta.to_bytes();
        let back = ProfileDelta::from_bytes(&wire).expect("valid message decodes");
        prop_assert_eq!(&back, &delta);
        prop_assert_eq!(back.apply_to(&base).expect("applies to its base"), next);
        // Chunk IDs content-address the churn, not the header.
        let rebased = ProfileDelta::compute(
            base.iter().copied(), next.iter().copied(), 100, 200, 1, 2,
        );
        prop_assert_eq!(rebased.chunk_id(), delta.chunk_id());
    }

    /// Every strict prefix of a valid message is rejected, and so is
    /// any message with bytes appended.
    #[test]
    fn truncations_and_extensions_error(
        base in arb_cells(32),
        next in arb_cells(32),
    ) {
        let wire = delta_of(&base, &next, 0).to_bytes();
        for cut in 0..wire.len() {
            prop_assert!(
                ProfileDelta::from_bytes(wire.get(..cut).expect("in range")).is_err(),
                "strict prefix of length {} decoded", cut
            );
        }
        let mut padded = wire.clone();
        padded.push(0x00);
        prop_assert!(ProfileDelta::from_bytes(&padded).is_err());
    }

    /// Single-byte XOR mutations at every position either error or
    /// yield the canonical encoding of whatever they decode to.
    #[test]
    fn single_byte_mutations_never_misdecode(
        base in arb_cells(24),
        next in arb_cells(24),
        mask in 1u8..=255,
    ) {
        let wire = delta_of(&base, &next, 3).to_bytes();
        for pos in 0..wire.len() {
            let mut mutated = wire.clone();
            if let Some(byte) = mutated.get_mut(pos) {
                *byte ^= mask;
            }
            assert_canonical_or_err(&mutated);
        }
    }

    /// Random byte soup behind the magic never panics and never
    /// produces a non-canonical accept.
    #[test]
    fn random_bodies_never_panic(seed in any::<u64>(), len in 0usize..160) {
        let mut rng = SplitMix64::new(seed);
        let mut forged = b"RPD1".to_vec();
        for _ in 0..len {
            forged.push((rng.next_u64() & 0xFF) as u8);
        }
        assert_canonical_or_err(&forged);
    }

    /// Payload tampering that survives structural checks is caught by
    /// the chunk-ID binding: re-binding a valid payload under a wrong
    /// chunk ID always errors with `ChunkIdMismatch`.
    #[test]
    fn forged_chunk_ids_are_rejected(
        base in arb_cells(24),
        next in arb_cells(24),
        flip in any::<u64>(),
    ) {
        prop_assume!(flip != 0);
        let delta = delta_of(&base, &next, 1);
        let payload = delta.payload_bytes();
        let forged = encode_message(
            delta.base_epoch,
            delta.new_epoch,
            delta.base_hash,
            delta.result_hash,
            chunk_id_of(&payload) ^ flip,
            &payload,
        );
        prop_assert_eq!(
            ProfileDelta::from_bytes(&forged),
            Err(DeltaCodecError::ChunkIdMismatch)
        );
    }

    /// Out-of-order application: a delta chained B→C refuses to apply
    /// to A (base-hash mismatch), and swapping a two-message chain is
    /// caught the same way — replay protection at the apply layer.
    #[test]
    fn out_of_order_deltas_fail_base_hash_check(
        a in arb_cells(32),
        b in arb_cells(32),
        c in arb_cells(32),
    ) {
        prop_assume!(a != b && b != c);
        let hash_of = |s: &BTreeSet<u64>| {
            let cells: Vec<u8> = s.iter().flat_map(|x| x.to_le_bytes()).collect();
            content_hash(&cells)
        };
        let ab = ProfileDelta::compute(
            a.iter().copied(), b.iter().copied(), 0, 1, hash_of(&a), hash_of(&b),
        );
        let bc = ProfileDelta::compute(
            b.iter().copied(), c.iter().copied(), 1, 2, hash_of(&b), hash_of(&c),
        );
        // In order, the chain applies cleanly end to end.
        let mid = ab.apply_to(&a).expect("A→B applies to A");
        prop_assert_eq!(bc.apply_to(&mid).expect("B→C applies to B"), c.clone());
        // The wire survives the swap (both are valid messages)…
        let swapped = ProfileDelta::from_bytes(&bc.to_bytes()).expect("valid");
        // …but the apply-time hash gate rejects the wrong base.
        prop_assert_eq!(swapped.base_hash, hash_of(&b));
        prop_assert!(swapped.base_hash != hash_of(&a));
        // Structural apply may or may not succeed on the wrong base; a
        // caller honouring base_hash (as `FailureProfile::apply_delta`
        // does) must see the mismatch first.
        if let Err(err) = bc.apply_to(&a) {
            prop_assert!(matches!(
                err,
                DeltaApplyError::AddedAlreadyPresent(_) | DeltaApplyError::RemovedNotPresent(_)
            ));
        }
    }

    /// Chains decode message-by-message, and one corrupt message
    /// anywhere poisons the whole chain decode.
    #[test]
    fn chains_concatenate_and_fail_closed(
        sets in proptest::collection::vec(arb_cells(16), 2..5),
        corrupt_byte in any::<u8>(),
    ) {
        let mut wire = Vec::new();
        let mut deltas = Vec::new();
        for (i, pair) in sets.windows(2).enumerate() {
            let (from, to) = (&pair[0], &pair[1]);
            let d = delta_of(from, to, i as u64);
            wire.extend_from_slice(&d.to_bytes());
            deltas.push(d);
        }
        let chain = ProfileDelta::decode_chain(&wire).expect("chain decodes");
        prop_assert_eq!(chain, deltas);
        // Corrupt the final byte: either the last message errors or the
        // chain no longer re-encodes to the mutated wire.
        let mut bad = wire.clone();
        if let Some(last) = bad.last_mut() {
            let flipped = *last ^ corrupt_byte.max(1);
            *last = flipped;
        }
        if let Ok(decoded) = ProfileDelta::decode_chain(&bad) {
            let reencoded: Vec<u8> =
                decoded.iter().flat_map(ProfileDelta::to_bytes).collect();
            prop_assert_eq!(reencoded, bad);
        }
    }
}

/// Deterministic pathologies the random sweeps cannot reliably reach.
#[test]
fn crafted_pathologies_error_cleanly() {
    use DeltaCodecError as E;

    let empty_payload = {
        let mut p = Vec::new();
        push_varint(&mut p, 0);
        push_varint(&mut p, 0);
        p
    };

    // Epoch order violations: equal and reversed.
    for (base_e, new_e) in [(4, 4), (9, 2)] {
        let msg = encode_message(base_e, new_e, 0, 0, chunk_id_of(&empty_payload), &empty_payload);
        assert_eq!(ProfileDelta::from_bytes(&msg), Err(E::EpochOrder));
    }

    // Non-canonical epoch varint: `0x80 0x00` spells zero in two bytes.
    let mut overlong = b"RPD1".to_vec();
    overlong.extend_from_slice(&[0x80, 0x00]);
    assert_eq!(
        ProfileDelta::from_bytes(&overlong),
        Err(E::NonCanonicalVarint)
    );

    // Varint overflow in the added-count position.
    let mut payload = vec![0xFF; 9];
    payload.push(0x02);
    let msg = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
    assert_eq!(ProfileDelta::from_bytes(&msg), Err(E::VarintOverflow));

    // Count larger than the remaining payload can possibly hold.
    let mut payload = Vec::new();
    push_varint(&mut payload, 1000);
    let msg = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
    assert_eq!(ProfileDelta::from_bytes(&msg), Err(E::CountTooLarge));

    // Address overflow in the removed list.
    let mut payload = Vec::new();
    push_varint(&mut payload, 0); // no added cells
    push_varint(&mut payload, 2); // two removed cells
    push_varint(&mut payload, u64::MAX);
    push_varint(&mut payload, 0); // u64::MAX + 1 wraps
    let msg = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
    assert_eq!(ProfileDelta::from_bytes(&msg), Err(E::AddressOverflow));

    // A cell in both sets.
    let mut payload = Vec::new();
    push_varint(&mut payload, 1);
    push_varint(&mut payload, 42);
    push_varint(&mut payload, 1);
    push_varint(&mut payload, 42);
    let msg = encode_message(0, 1, 0, 0, chunk_id_of(&payload), &payload);
    assert_eq!(ProfileDelta::from_bytes(&msg), Err(E::AddedRemovedOverlap));

    // Wrong magic family: RPF1 bytes handed to the delta decoder.
    assert_eq!(
        ProfileDelta::from_bytes(b"RPF1\x00"),
        Err(E::BadMagic)
    );
}

/// Result-hash is carried faithfully so the fully checked apply path
/// (`FailureProfile::apply_delta`) can verify the outcome end-to-end.
#[test]
fn header_hashes_survive_the_wire() {
    let base: BTreeSet<u64> = [1, 2, 3].into_iter().collect();
    let next: BTreeSet<u64> = [2, 3, 4].into_iter().collect();
    let d = ProfileDelta::compute(
        base.iter().copied(),
        next.iter().copied(),
        10,
        11,
        0xDEAD_BEEF_0000_0001,
        0xDEAD_BEEF_0000_0002,
    );
    let back = ProfileDelta::from_bytes(&d.to_bytes()).expect("decodes");
    assert_eq!(back.base_hash, 0xDEAD_BEEF_0000_0001);
    assert_eq!(back.result_hash, 0xDEAD_BEEF_0000_0002);
    assert_eq!(back.base_epoch, 10);
    assert_eq!(back.new_epoch, 11);
}
