//! Property test: the trial-plan engines are bit-identical to the scalar
//! path.
//!
//! Random (vendor, seed, trial script) triples are replayed on fresh chips
//! through every [`TrialEngine`] at 1 and 4 worker threads, and the full
//! outcome transcripts must be byte-equal to the scalar single-thread
//! reference. Scripts include repeated conditions (so the Auto engine
//! promotes through scalar → compile → cache-hit within one run), time
//! advances (plan invalidation + VRT chain evolution + Poisson arrival
//! merges), and condition changes (multiple live plans per chip).
//!
//! `reaper_exec::set_thread_count` mutates process-global state, so — per
//! the workspace convention — exactly one test in this binary touches it.

use proptest::prelude::*;
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip, TrialEngine};

const VENDORS: [Vendor; 3] = [Vendor::A, Vendor::B, Vendor::C];
const INTERVALS_MS: [f64; 4] = [512.0, 1024.0, 2048.0, 3000.0];
const TEMPS_C: [f64; 3] = [45.0, 60.0, 70.0];
/// Hours advanced before a step: 0 keeps plans live, the others roll the
/// epoch and let VRT chains and arrivals evolve.
const ADVANCES_H: [f64; 3] = [0.0, 0.5, 2.0];

/// One trial-script step: indices into the tables above, plus how many
/// times to repeat the trial at the identical condition.
type Step = (u64, usize, usize, usize, u64);

fn pattern_of(code: u64) -> DataPattern {
    match code % 6 {
        0 => DataPattern::solid0(),
        1 => DataPattern::checkerboard(),
        2 => DataPattern::row_stripe(),
        3 => DataPattern::col_stripe(),
        4 => DataPattern::walking1((code / 6) % 8),
        _ => DataPattern::random(code),
    }
}

/// Replays `steps` on a fresh chip with the given engine and thread count,
/// returning the concatenated failure transcripts.
fn run_script(
    cfg: &RetentionConfig,
    seed: u64,
    engine: TrialEngine,
    threads: usize,
    steps: &[Step],
) -> Vec<Vec<u64>> {
    reaper_exec::set_thread_count(Some(threads));
    let mut chip = SimulatedChip::new(cfg.clone(), seed);
    chip.set_trial_engine(engine);
    let mut transcript = Vec::new();
    for &(pattern_code, interval_i, temp_i, advance_i, repeats) in steps {
        // The generators bound every index, so the fallbacks never fire;
        // they just keep this helper panic-free outside a #[test] body.
        let hours = ADVANCES_H.get(advance_i).copied().unwrap_or(0.0);
        if hours > 0.0 {
            chip.advance(Ms::from_hours(hours));
        }
        let pattern = pattern_of(pattern_code);
        let interval = Ms::new(INTERVALS_MS.get(interval_i).copied().unwrap_or(1024.0));
        let temp = Celsius::new(TEMPS_C.get(temp_i).copied().unwrap_or(60.0));
        for _ in 0..repeats {
            transcript.push(chip.retention_trial(pattern, interval, temp).into_vec());
        }
    }
    transcript
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_engine_matches_scalar_bit_for_bit(
        seed in 0u64..10_000,
        vendor_i in 0usize..3,
        steps in proptest::collection::vec(
            (0u64..24, 0usize..4, 0usize..3, 0usize..3, 1u64..3),
            3..8,
        ),
    ) {
        let cfg = RetentionConfig::for_vendor(VENDORS[vendor_i]).with_capacity_scale(1, 64);
        let reference = run_script(&cfg, seed, TrialEngine::Scalar, 1, &steps);
        prop_assert!(
            reference.iter().any(|t| !t.is_empty()),
            "degenerate script: no step produced failures"
        );
        for engine in [
            TrialEngine::Scalar,
            TrialEngine::Auto,
            TrialEngine::Lowered,
            TrialEngine::Compiled,
        ] {
            for threads in [1usize, 4] {
                let got = run_script(&cfg, seed, engine, threads, &steps);
                prop_assert_eq!(
                    &got, &reference,
                    "transcript diverged: engine {:?}, {} thread(s), vendor {:?}, seed {}",
                    engine, threads, VENDORS[vendor_i], seed
                );
            }
        }
        reaper_exec::set_thread_count(None);
    }
}
