//! Property test: the trial-plan engines are bit-identical to the scalar
//! path.
//!
//! Random (vendor, seed, trial script) triples are replayed on fresh chips
//! through every [`TrialEngine`] at 1 and 4 worker threads, and the full
//! outcome transcripts must be byte-equal to the scalar single-thread
//! reference. The same scripts are then replayed through the multi-round
//! batch entry point at batch caps 1, 7, and 64 — covering single-round
//! batches, partial planes, and full 64-bit planes — and must match the
//! same reference byte for byte. Scripts include repeated conditions (so
//! the Auto engine promotes through scalar → compile → cache-hit within
//! one run), occasional 60–70-round repeat bursts (so batched replays
//! cross the 64-round plane boundary mid-step), time advances (plan
//! invalidation + VRT chain evolution + Poisson arrival merges), and
//! condition changes (multiple live plans per chip).
//!
//! `reaper_exec::set_thread_count` mutates process-global state, so — per
//! the workspace convention — exactly one test in this binary touches it.
//! The schedule-equivalence test below runs at the default thread count.

use proptest::prelude::*;
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip, TrialEngine};

const VENDORS: [Vendor; 3] = [Vendor::A, Vendor::B, Vendor::C];
const INTERVALS_MS: [f64; 4] = [512.0, 1024.0, 2048.0, 3000.0];
const TEMPS_C: [f64; 3] = [45.0, 60.0, 70.0];
/// Hours advanced before a step: 0 keeps plans live, the others roll the
/// epoch and let VRT chains and arrivals evolve.
const ADVANCES_H: [f64; 3] = [0.0, 0.5, 2.0];
/// Batch caps replayed against the scalar reference: single-round
/// batches, a partial plane, and the full 64-bit plane.
const BATCH_CAPS: [usize; 3] = [1, 7, 64];

/// One trial-script step: indices into the tables above, plus a repeat
/// code (see [`repeats_of`]).
type Step = (u64, usize, usize, usize, u64);

fn pattern_of(code: u64) -> DataPattern {
    match code % 6 {
        0 => DataPattern::solid0(),
        1 => DataPattern::checkerboard(),
        2 => DataPattern::row_stripe(),
        3 => DataPattern::col_stripe(),
        4 => DataPattern::walking1((code / 6) % 8),
        _ => DataPattern::random(code),
    }
}

/// Maps a repeat code to a repeat count: mostly 1–2 (cheap, exercises
/// plan promotion), occasionally 60 or 66 — a near-full plane, and one
/// that forces a 64-cap batched replay to split the step across two
/// bit-planes.
fn repeats_of(code: u64) -> u64 {
    if code >= 10 {
        code * 6
    } else {
        1 + code % 2
    }
}

/// Decodes one step into its trial parameters, advancing the chip clock
/// first when the step asks for it.
fn apply_step(
    chip: &mut SimulatedChip,
    step: &Step,
) -> (DataPattern, Ms, Celsius, u64) {
    let &(pattern_code, interval_i, temp_i, advance_i, repeat_code) = step;
    // The generators bound every index, so the fallbacks never fire;
    // they just keep this helper panic-free outside a #[test] body.
    let hours = ADVANCES_H.get(advance_i).copied().unwrap_or(0.0);
    if hours > 0.0 {
        chip.advance(Ms::from_hours(hours));
    }
    let pattern = pattern_of(pattern_code);
    let interval = Ms::new(INTERVALS_MS.get(interval_i).copied().unwrap_or(1024.0));
    let temp = Celsius::new(TEMPS_C.get(temp_i).copied().unwrap_or(60.0));
    (pattern, interval, temp, repeats_of(repeat_code))
}

/// Replays `steps` on a fresh chip with the given engine and thread count,
/// returning the concatenated failure transcripts.
fn run_script(
    cfg: &RetentionConfig,
    seed: u64,
    engine: TrialEngine,
    threads: usize,
    steps: &[Step],
) -> Vec<Vec<u64>> {
    reaper_exec::set_thread_count(Some(threads));
    let mut chip = SimulatedChip::new(cfg.clone(), seed);
    chip.set_trial_engine(engine);
    let mut transcript = Vec::new();
    for step in steps {
        let (pattern, interval, temp, repeats) = apply_step(&mut chip, step);
        for _ in 0..repeats {
            transcript.push(chip.retention_trial(pattern, interval, temp).into_vec());
        }
    }
    transcript
}

/// Replays `steps` on a fresh chip through the multi-round batch entry
/// point: each step's repeats are submitted as one
/// `retention_trial_batches` call with the given per-pass cap.
fn run_script_batched(
    cfg: &RetentionConfig,
    seed: u64,
    threads: usize,
    max_batch: usize,
    steps: &[Step],
) -> Vec<Vec<u64>> {
    reaper_exec::set_thread_count(Some(threads));
    let mut chip = SimulatedChip::new(cfg.clone(), seed);
    let mut transcript = Vec::new();
    for step in steps {
        let (pattern, interval, temp, repeats) = apply_step(&mut chip, step);
        let rounds = u32::try_from(repeats).unwrap_or(u32::MAX);
        for outcome in chip.retention_trial_batches(pattern, interval, temp, rounds, max_batch) {
            transcript.push(outcome.into_vec());
        }
    }
    transcript
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_engine_matches_scalar_bit_for_bit(
        seed in 0u64..10_000,
        vendor_i in 0usize..3,
        steps in proptest::collection::vec(
            (0u64..24, 0usize..4, 0usize..3, 0usize..3, 0u64..12),
            3..8,
        ),
    ) {
        let cfg = RetentionConfig::for_vendor(VENDORS[vendor_i]).with_capacity_scale(1, 64);
        let reference = run_script(&cfg, seed, TrialEngine::Scalar, 1, &steps);
        prop_assert!(
            reference.iter().any(|t| !t.is_empty()),
            "degenerate script: no step produced failures"
        );
        for engine in [
            TrialEngine::Scalar,
            TrialEngine::Auto,
            TrialEngine::Lowered,
            TrialEngine::Compiled,
            TrialEngine::Batch,
        ] {
            for threads in [1usize, 4] {
                let got = run_script(&cfg, seed, engine, threads, &steps);
                prop_assert_eq!(
                    &got, &reference,
                    "transcript diverged: engine {:?}, {} thread(s), vendor {:?}, seed {}",
                    engine, threads, VENDORS[vendor_i], seed
                );
            }
        }
        for max_batch in BATCH_CAPS {
            for threads in [1usize, 4] {
                let got = run_script_batched(&cfg, seed, threads, max_batch, &steps);
                prop_assert_eq!(
                    &got, &reference,
                    "batched transcript diverged: cap {}, {} thread(s), vendor {:?}, seed {}",
                    max_batch, threads, VENDORS[vendor_i], seed
                );
            }
        }
        reaper_exec::set_thread_count(None);
    }
}

/// The heterogeneous-schedule entry point must match a sequential
/// `retention_trial` loop over the same entries, at every batch cap.
/// Runs at the default thread count (the proptest above owns this
/// binary's one `set_thread_count` slot).
#[test]
fn schedule_matches_sequential_loop() {
    let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 32);
    let mut schedule = Vec::new();
    for rep in 0..3u64 {
        schedule.push((DataPattern::checkerboard(), Ms::new(1024.0), Celsius::new(60.0)));
        schedule.push((DataPattern::solid0(), Ms::new(2048.0), Celsius::new(60.0)));
        schedule.push((DataPattern::row_stripe(), Ms::new(1024.0), Celsius::new(75.0)));
        schedule.push((DataPattern::random(rep), Ms::new(1536.0), Celsius::new(60.0)));
        schedule.push((DataPattern::checkerboard(), Ms::new(1024.0), Celsius::new(60.0)));
    }

    let mut reference_chip = SimulatedChip::new(cfg.clone(), 4242);
    reference_chip.advance(Ms::from_hours(1.0));
    let reference: Vec<Vec<u64>> = schedule
        .iter()
        .map(|&(p, i, t)| reference_chip.retention_trial(p, i, t).into_vec())
        .collect();
    assert!(
        reference.iter().any(|t| !t.is_empty()),
        "degenerate schedule: no entry produced failures"
    );

    for max_batch in BATCH_CAPS {
        let mut chip = SimulatedChip::new(cfg.clone(), 4242);
        chip.advance(Ms::from_hours(1.0));
        let got: Vec<Vec<u64>> = chip
            .retention_trial_schedule(&schedule, max_batch)
            .into_iter()
            .map(|o| o.into_vec())
            .collect();
        assert_eq!(got, reference, "schedule diverged at cap {max_batch}");
    }
}
