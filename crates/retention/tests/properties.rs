//! Property-based tests of the retention physics invariants the paper's
//! observations rest on.

use proptest::prelude::*;
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip, WeakCell};

fn any_cell() -> impl Strategy<Value = WeakCell> {
    (
        0u64..1_000_000,
        0.1f32..4.0,
        0.01f32..0.3,
        any::<bool>(),
        0.0f32..0.25,
        0u8..16,
    )
        .prop_map(|(index, mu0, sigma0, vulnerable_bit, dpd_strength, dpd_signature)| WeakCell {
            index,
            mu0,
            sigma0,
            vulnerable_bit,
            dpd_strength,
            dpd_signature,
            vrt_index: None,
        })
}

proptest! {
    #[test]
    fn fail_probability_is_monotone_in_interval(cell in any_cell(), t1 in 0.1..4.0f64, t2 in 0.1..4.0f64) {
        prop_assume!(t1 < t2);
        let p1 = cell.fail_probability(t1, 1.0, 1.0, 0.5, 1.0);
        let p2 = cell.fail_probability(t2, 1.0, 1.0, 0.5, 1.0);
        prop_assert!(p2 >= p1, "p({t1})={p1} > p({t2})={p2}");
    }

    #[test]
    fn fail_probability_is_monotone_in_stress(cell in any_cell(), s1 in 0.0..1.0f64, s2 in 0.0..1.0f64, t in 0.5..3.0f64) {
        prop_assume!(s1 < s2);
        let p1 = cell.fail_probability(t, 1.0, 1.0, s1, 1.0);
        let p2 = cell.fail_probability(t, 1.0, 1.0, s2, 1.0);
        prop_assert!(p2 >= p1 - 1e-12);
    }

    #[test]
    fn hotter_is_never_safer(cell in any_cell(), t in 0.5..3.0f64, scale in 0.3..1.0f64) {
        // mu_temp_scale < 1 models heating; probability must not drop.
        let cold = cell.fail_probability(t, 1.0, 1.0, 0.5, 1.0);
        let hot = cell.fail_probability(t, scale, 1.0, 0.5, 1.0);
        prop_assert!(hot >= cold - 1e-12);
    }

    #[test]
    fn worst_case_bounds_every_configuration(
        cell in any_cell(),
        t in 0.2..4.0f64,
        stress in 0.0..1.0f64,
    ) {
        let any = cell.fail_probability(t, 1.0, 1.0, stress, 1.0);
        let worst = cell.worst_case_fail_probability(t, 1.0, 1.0, 1.0);
        prop_assert!(any <= worst + 1e-12);
    }

    #[test]
    fn probabilities_are_probabilities(cell in any_cell(), t in 0.0..10.0f64) {
        let p = cell.fail_probability(t, 1.0, 1.0, 1.0, 1.0);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ground_truth_is_monotone_in_interval(seed in 0u64..50) {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 64),
            seed,
        );
        let t60 = Celsius::new(60.0);
        let small = chip.failing_set_worst_case(Ms::new(1024.0), t60, 0.1);
        let large = chip.failing_set_worst_case(Ms::new(2048.0), t60, 0.1);
        for cell in &small {
            prop_assert!(large.binary_search(cell).is_ok(), "cell {cell} vanished at longer interval");
        }
    }

    #[test]
    fn trial_failures_are_subset_of_analytic_superset(seed in 0u64..50) {
        // Everything a trial reports must be possible at tiny min_prob.
        let mut chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::A).with_capacity_scale(1, 64),
            seed,
        );
        let t60 = Celsius::new(60.0);
        let superset = chip.failing_set_worst_case(Ms::new(2048.0), t60, 1e-9);
        let outcome = chip.retention_trial(DataPattern::random(seed), Ms::new(2048.0), t60);
        for cell in outcome.failures() {
            prop_assert!(superset.binary_search(cell).is_ok(), "cell {cell} not in superset");
        }
    }

    #[test]
    fn ground_truth_min_prob_is_antitone(seed in 0u64..50) {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::C).with_capacity_scale(1, 64),
            seed,
        );
        let t60 = Celsius::new(60.0);
        let loose = chip.failing_set_worst_case(Ms::new(1536.0), t60, 0.01);
        let strict = chip.failing_set_worst_case(Ms::new(1536.0), t60, 0.9);
        prop_assert!(strict.len() <= loose.len());
        for cell in &strict {
            prop_assert!(loose.binary_search(cell).is_ok());
        }
    }
}
