//! Wire-level request/response mapping: JSON bodies ↔ [`JobRequest`]
//! (plain profiling or a portfolio race) and outcome summaries ↔ JSON.
//!
//! The JSON form is a convenience veneer; canonicalization and hashing
//! operate on the request's canonical bytes
//! ([`ProfilingRequest::canonical_bytes`] /
//! [`PortfolioRequest::canonical_bytes`]), never on JSON text, so
//! formatting, key order, and optional-field defaults cannot perturb
//! job identity. The two kinds hash in disjoint domains, so a portfolio
//! job can never collide with a profiling job.

use reaper_core::{PatternSpec, ProfilingOutcome, ProfilingRequest, RequestError};
use reaper_dram_model::Vendor;
use reaper_portfolio::PortfolioRequest;

use crate::json::{self, Value};

/// Default capacity-scale numerator when the body omits `capacity_num`.
const DEFAULT_CAPACITY_NUM: u64 = 1;
/// Default capacity-scale denominator (1/16 of the represented bits).
const DEFAULT_CAPACITY_DEN: u64 = 16;
/// Default ambient target temperature in °C.
const DEFAULT_AMBIENT_C: f64 = 45.0;
/// Default profiling rounds.
const DEFAULT_ROUNDS: u32 = 4;
/// Default coverage goal for portfolio races.
const DEFAULT_COVERAGE_GOAL: f64 = 0.9;
/// Default false-positive-rate cap for portfolio races.
const DEFAULT_MAX_FPR: f64 = 1.0;

/// One submitted job, of either kind the service executes. The wire
/// discriminator is the optional `kind` field of the submit body:
/// absent or `"profiling"` is a plain [`ProfilingRequest`] (backward
/// compatible with every pre-portfolio client), `"portfolio"` is a
/// racing [`PortfolioRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// A single-strategy profiling run.
    Profiling(ProfilingRequest),
    /// A portfolio race over the default candidate strategies.
    Portfolio(PortfolioRequest),
}

impl JobRequest {
    /// The wire name of this job kind (the `kind` submit field).
    pub fn kind(&self) -> &'static str {
        match self {
            JobRequest::Profiling(_) => "profiling",
            JobRequest::Portfolio(_) => "portfolio",
        }
    }

    /// The content-addressed job ID; the two kinds hash in disjoint
    /// domains.
    pub fn job_id(&self) -> u64 {
        match self {
            JobRequest::Profiling(r) => r.job_id(),
            JobRequest::Portfolio(r) => r.job_id(),
        }
    }

    /// Semantic validation, delegated to the underlying request.
    ///
    /// # Errors
    /// The underlying request's [`RequestError`].
    pub fn validate(&self) -> Result<(), RequestError> {
        match self {
            JobRequest::Profiling(r) => r.validate(),
            JobRequest::Portfolio(r) => r.validate(),
        }
    }

    /// The simulated chip's vendor.
    pub fn vendor(&self) -> Vendor {
        match self {
            JobRequest::Profiling(r) => r.vendor,
            JobRequest::Portfolio(r) => r.vendor,
        }
    }

    /// The request seed.
    pub fn seed(&self) -> u64 {
        match self {
            JobRequest::Profiling(r) => r.seed,
            JobRequest::Portfolio(r) => r.seed,
        }
    }
}

impl From<ProfilingRequest> for JobRequest {
    fn from(r: ProfilingRequest) -> Self {
        JobRequest::Profiling(r)
    }
}

impl From<PortfolioRequest> for JobRequest {
    fn from(r: PortfolioRequest) -> Self {
        JobRequest::Portfolio(r)
    }
}

/// Parses a `POST /v1/jobs` JSON body into a [`JobRequest`].
///
/// Required fields for both kinds: `vendor` (`"A"|"B"|"C"`), `seed`,
/// `target_interval_ms`. Optional with defaults: `kind`
/// (`"profiling"`), `capacity_num` (1), `capacity_den` (16),
/// `target_ambient_c` (45), `rounds` (4), `patterns` (`"standard"`).
/// Profiling-only: `reach_delta_ms` (0), `reach_delta_temp_c` (0).
/// Portfolio-only: `coverage_goal` (0.9), `max_fpr` (1).
///
/// # Errors
/// A human-readable message naming the offending field; the request is
/// *not* semantically validated here (that is [`JobRequest::validate`]'s
/// job).
pub fn parse_job_body(body: &[u8]) -> Result<JobRequest, String> {
    let text = core::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if !matches!(doc, Value::Obj(_)) {
        return Err("body must be a JSON object".to_string());
    }

    let kind = match doc.get("kind") {
        None => "profiling",
        Some(v) => v.as_str().ok_or("field `kind` must be a string")?,
    };
    match kind {
        "profiling" => parse_profiling_fields(&doc).map(JobRequest::Profiling),
        "portfolio" => parse_portfolio_fields(&doc).map(JobRequest::Portfolio),
        other => Err(format!(
            "unknown job kind `{other}` (expected profiling or portfolio)"
        )),
    }
}

/// The fields both job kinds share, parsed with their shared defaults.
struct CommonFields {
    vendor: Vendor,
    capacity_num: u64,
    capacity_den: u64,
    seed: u64,
    target_interval_ms: f64,
    target_ambient_c: f64,
    rounds: u32,
    patterns: PatternSpec,
}

fn parse_common_fields(doc: &Value) -> Result<CommonFields, String> {
    let vendor_name = doc
        .get("vendor")
        .and_then(Value::as_str)
        .ok_or("missing required string field `vendor`")?;
    let vendor = Vendor::ALL
        .iter()
        .copied()
        .find(|v| v.name() == vendor_name)
        .ok_or_else(|| format!("unknown vendor `{vendor_name}` (expected A, B, or C)"))?;

    let seed = doc
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("missing required integer field `seed`")?;
    let target_interval_ms = doc
        .get("target_interval_ms")
        .and_then(Value::as_f64)
        .ok_or("missing required numeric field `target_interval_ms`")?;

    let opt_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match doc.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
        }
    };
    let opt_f64 = |key: &str, default: f64| -> Result<f64, String> {
        match doc.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("field `{key}` must be a number")),
        }
    };

    let patterns = match doc.get("patterns") {
        None => PatternSpec::Standard,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or("field `patterns` must be a string")?;
            PatternSpec::parse(name).ok_or_else(|| {
                format!("unknown pattern set `{name}` (expected standard or random_only)")
            })?
        }
    };

    let rounds_u64 = opt_u64("rounds", u64::from(DEFAULT_ROUNDS))?;
    let rounds =
        u32::try_from(rounds_u64).map_err(|_| "field `rounds` is out of range".to_string())?;

    Ok(CommonFields {
        vendor,
        capacity_num: opt_u64("capacity_num", DEFAULT_CAPACITY_NUM)?,
        capacity_den: opt_u64("capacity_den", DEFAULT_CAPACITY_DEN)?,
        seed,
        target_interval_ms,
        target_ambient_c: opt_f64("target_ambient_c", DEFAULT_AMBIENT_C)?,
        rounds,
        patterns,
    })
}

fn opt_f64_field(doc: &Value, key: &str, default: f64) -> Result<f64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn parse_profiling_fields(doc: &Value) -> Result<ProfilingRequest, String> {
    let common = parse_common_fields(doc)?;
    Ok(ProfilingRequest {
        vendor: common.vendor,
        capacity_num: common.capacity_num,
        capacity_den: common.capacity_den,
        seed: common.seed,
        target_interval_ms: common.target_interval_ms,
        target_ambient_c: common.target_ambient_c,
        reach_delta_ms: opt_f64_field(doc, "reach_delta_ms", 0.0)?,
        reach_delta_temp_c: opt_f64_field(doc, "reach_delta_temp_c", 0.0)?,
        rounds: common.rounds,
        patterns: common.patterns,
    })
}

fn parse_portfolio_fields(doc: &Value) -> Result<PortfolioRequest, String> {
    let common = parse_common_fields(doc)?;
    Ok(PortfolioRequest {
        vendor: common.vendor,
        capacity_num: common.capacity_num,
        capacity_den: common.capacity_den,
        seed: common.seed,
        target_interval_ms: common.target_interval_ms,
        target_ambient_c: common.target_ambient_c,
        coverage_goal: opt_f64_field(doc, "coverage_goal", DEFAULT_COVERAGE_GOAL)?,
        max_fpr: opt_f64_field(doc, "max_fpr", DEFAULT_MAX_FPR)?,
        rounds: common.rounds,
        patterns: common.patterns,
    })
}

/// Renders a [`JobRequest`] as the JSON body [`parse_job_body`]
/// accepts (used by the client and the load generator).
pub fn encode_job_body(req: &JobRequest) -> String {
    job_body_value(req).encode()
}

/// The submit-body JSON as a [`Value`] — used where the request is
/// embedded in a larger document (the fleet sync manifest) instead of
/// sent as a body of its own. Profiling bodies omit the `kind` field so
/// they stay parseable by pre-portfolio readers; portfolio bodies lead
/// with `"kind":"portfolio"`.
pub fn job_body_value(req: &JobRequest) -> Value {
    match req {
        JobRequest::Profiling(r) => json::obj([
            ("vendor", json::str(r.vendor.name())),
            ("capacity_num", json::uint(r.capacity_num)),
            ("capacity_den", json::uint(r.capacity_den)),
            ("seed", json::uint(r.seed)),
            ("target_interval_ms", json::num(r.target_interval_ms)),
            ("target_ambient_c", json::num(r.target_ambient_c)),
            ("reach_delta_ms", json::num(r.reach_delta_ms)),
            ("reach_delta_temp_c", json::num(r.reach_delta_temp_c)),
            ("rounds", json::uint(u64::from(r.rounds))),
            ("patterns", json::str(r.patterns.name())),
        ]),
        JobRequest::Portfolio(r) => json::obj([
            ("kind", json::str("portfolio")),
            ("vendor", json::str(r.vendor.name())),
            ("capacity_num", json::uint(r.capacity_num)),
            ("capacity_den", json::uint(r.capacity_den)),
            ("seed", json::uint(r.seed)),
            ("target_interval_ms", json::num(r.target_interval_ms)),
            ("target_ambient_c", json::num(r.target_ambient_c)),
            ("coverage_goal", json::num(r.coverage_goal)),
            ("max_fpr", json::num(r.max_fpr)),
            ("rounds", json::uint(u64::from(r.rounds))),
            ("patterns", json::str(r.patterns.name())),
        ]),
    }
}

/// The compact, JSON-safe summary of a completed job stored in its
/// record and returned by `GET /v1/jobs/{id}`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Cells in the profiled failure set.
    pub cells: u64,
    /// Cells in the analytic ground-truth set.
    pub truth_cells: u64,
    /// Coverage of the ground truth (0–1).
    pub coverage: f64,
    /// False-positive rate over profiled cells (0–1).
    pub false_positive_rate: f64,
    /// Simulated profiling runtime in milliseconds.
    pub runtime_ms: f64,
    /// Profiling iterations executed.
    pub iterations: u64,
    /// Encoded profile size in bytes.
    pub profile_bytes: u64,
    /// Content hash of the encoded profile (16 hex digits) — the value
    /// inside the profile endpoint's ETag at epoch 0, so a client can
    /// pre-validate a cached copy from the status document alone.
    pub profile_hash: String,
}

impl JobSummary {
    /// Builds the summary from an execution outcome and its encoded
    /// profile bytes.
    pub fn from_outcome(outcome: &ProfilingOutcome, encoded: &[u8]) -> Self {
        Self {
            cells: reaper_exec::num::to_u64(outcome.run.profile.len()),
            truth_cells: reaper_exec::num::to_u64(outcome.truth_cells),
            coverage: outcome.metrics.coverage,
            false_positive_rate: outcome.metrics.false_positive_rate,
            runtime_ms: outcome.run.runtime.as_ms(),
            iterations: reaper_exec::num::to_u64(outcome.run.iteration_count()),
            profile_bytes: reaper_exec::num::to_u64(encoded.len()),
            profile_hash: format!("{:016x}", reaper_retention::delta::content_hash(encoded)),
        }
    }

    /// The summary as a JSON object value.
    pub fn to_value(&self) -> Value {
        json::obj([
            ("cells", json::uint(self.cells)),
            ("truth_cells", json::uint(self.truth_cells)),
            ("coverage", json::num(self.coverage)),
            ("false_positive_rate", json::num(self.false_positive_rate)),
            ("runtime_ms", json::num(self.runtime_ms)),
            ("iterations", json::uint(self.iterations)),
            ("profile_bytes", json::uint(self.profile_bytes)),
            ("profile_hash", json::str(self.profile_hash.clone())),
        ])
    }

    /// Parses a summary back out of its [`JobSummary::to_value`] JSON
    /// form — the replication path: a replica installing a peer's job
    /// record reconstructs the summary from the sync manifest instead
    /// of re-executing the job.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(Self {
            cells: v.get("cells").and_then(Value::as_u64)?,
            truth_cells: v.get("truth_cells").and_then(Value::as_u64)?,
            coverage: v.get("coverage").and_then(Value::as_f64)?,
            false_positive_rate: v.get("false_positive_rate").and_then(Value::as_f64)?,
            runtime_ms: v.get("runtime_ms").and_then(Value::as_f64)?,
            iterations: v.get("iterations").and_then(Value::as_u64)?,
            profile_bytes: v.get("profile_bytes").and_then(Value::as_u64)?,
            profile_hash: v.get("profile_hash").and_then(Value::as_str)?.to_string(),
        })
    }
}

/// A uniform JSON error body: `{"error": "<message>"}`.
pub fn error_body(message: &str) -> String {
    json::obj([("error", json::str(message))]).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_roundtrips_to_the_same_job_id() {
        let req = JobRequest::Profiling(ProfilingRequest::example(42));
        let body = encode_job_body(&req);
        let back = parse_job_body(body.as_bytes()).expect("own encoding parses");
        assert_eq!(back, req);
        assert_eq!(back.job_id(), req.job_id());
    }

    #[test]
    fn portfolio_body_roundtrips_and_kind_discriminates() {
        let req = JobRequest::Portfolio(PortfolioRequest::example(42));
        let body = encode_job_body(&req);
        assert!(body.contains(r#""kind":"portfolio""#));
        let back = parse_job_body(body.as_bytes()).expect("own encoding parses");
        assert_eq!(back, req);
        assert_eq!(back.job_id(), req.job_id());
        assert_eq!(back.kind(), "portfolio");
        // The same fields without the kind discriminator parse as a
        // profiling job with a different (domain-separated) ID.
        let plain = parse_job_body(
            br#"{"vendor":"B","seed":42,"target_interval_ms":512}"#,
        )
        .expect("parses");
        assert_eq!(plain.kind(), "profiling");
        assert_ne!(plain.job_id(), back.job_id());
        // An explicit kind=profiling is accepted too.
        let explicit = parse_job_body(
            br#"{"kind":"profiling","vendor":"B","seed":42,"target_interval_ms":512}"#,
        )
        .expect("parses");
        assert_eq!(explicit, plain);
    }

    #[test]
    fn minimal_portfolio_body_fills_documented_defaults() {
        let req = parse_job_body(
            br#"{"kind":"portfolio","vendor":"B","seed":7,"target_interval_ms":512,"capacity_den":64,"rounds":6}"#,
        )
        .expect("minimal body");
        let JobRequest::Portfolio(p) = req else {
            panic!("kind=portfolio must parse as a portfolio job");
        };
        assert_eq!(p.coverage_goal, 0.9);
        assert_eq!(p.max_fpr, 1.0);
        assert_eq!(p, PortfolioRequest::example(7));
    }

    #[test]
    fn minimal_body_fills_documented_defaults() {
        let parsed = parse_job_body(br#"{"vendor":"B","seed":7,"target_interval_ms":1024}"#)
            .expect("minimal body");
        let JobRequest::Profiling(req) = parsed else {
            panic!("bodies without a kind must stay profiling jobs");
        };
        assert_eq!(req.vendor, Vendor::B);
        assert_eq!(req.seed, 7);
        assert_eq!(req.capacity_num, 1);
        assert_eq!(req.capacity_den, 16);
        assert_eq!(req.target_ambient_c, 45.0);
        assert_eq!(req.reach_delta_ms, 0.0);
        assert_eq!(req.rounds, 4);
        assert_eq!(req.patterns, PatternSpec::Standard);
        // Defaults must match ProfilingRequest::example modulo the fields
        // example() sets explicitly.
        let mut example = ProfilingRequest::example(7);
        example.reach_delta_ms = 0.0;
        assert_eq!(req, example);
    }

    #[test]
    fn bad_bodies_name_the_offending_field() {
        let cases: [(&[u8], &str); 9] = [
            (b"not json", "json error"),
            (b"[]", "must be a JSON object"),
            (br#"{"seed":1,"target_interval_ms":1}"#, "`vendor`"),
            (br#"{"vendor":"Z","seed":1,"target_interval_ms":1}"#, "unknown vendor"),
            (br#"{"vendor":"A","target_interval_ms":1}"#, "`seed`"),
            (br#"{"vendor":"A","seed":1}"#, "`target_interval_ms`"),
            (
                br#"{"vendor":"A","seed":1,"target_interval_ms":1,"patterns":"zigzag"}"#,
                "unknown pattern set",
            ),
            (
                br#"{"kind":"lottery","vendor":"A","seed":1,"target_interval_ms":1}"#,
                "unknown job kind",
            ),
            (
                br#"{"kind":"portfolio","vendor":"A","seed":1,"target_interval_ms":1,"max_fpr":"low"}"#,
                "`max_fpr`",
            ),
        ];
        for (body, needle) in cases {
            let err = parse_job_body(body).expect_err("must reject");
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn seed_precision_is_not_lost_through_json() {
        let mut req = ProfilingRequest::example(0);
        req.seed = u64::MAX - 1;
        let req = JobRequest::Profiling(req);
        let back = parse_job_body(encode_job_body(&req).as_bytes()).expect("parses");
        assert_eq!(back.seed(), u64::MAX - 1);
        assert_eq!(back.job_id(), req.job_id());
    }

    #[test]
    fn summary_serializes_every_field() {
        let outcome = ProfilingRequest::example(3)
            .execute()
            .expect("example executes");
        let encoded = outcome.run.profile.to_bytes();
        let summary = JobSummary::from_outcome(&outcome, &encoded);
        let v = summary.to_value();
        for key in [
            "cells",
            "truth_cells",
            "coverage",
            "false_positive_rate",
            "runtime_ms",
            "iterations",
            "profile_bytes",
            "profile_hash",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("profile_bytes").and_then(Value::as_u64),
            Some(reaper_exec::num::to_u64(encoded.len()))
        );
        assert_eq!(
            v.get("profile_hash").and_then(Value::as_str),
            Some(format!("{:016x}", outcome.run.profile.content_hash()).as_str())
        );
        assert_eq!(error_body("boom"), r#"{"error":"boom"}"#);
    }

    #[test]
    fn summary_roundtrips_through_json_value() {
        let outcome = ProfilingRequest::example(3)
            .execute()
            .expect("example executes");
        let encoded = outcome.run.profile.to_bytes();
        let summary = JobSummary::from_outcome(&outcome, &encoded);
        let back = JobSummary::from_value(&summary.to_value()).expect("roundtrips");
        assert_eq!(back, summary);
        assert!(JobSummary::from_value(&json::obj([])).is_none());
    }
}
