//! The content-addressed result cache: job ID → encoded profile bytes,
//! with LRU eviction under a byte budget.
//!
//! Recency is a logical tick counter, not a clock — the cache must not
//! read wall time (lint rule D2), and logical ticks make eviction order a
//! pure function of the access sequence. Both maps are `BTreeMap` so
//! iteration order is deterministic (lint rule D1 bans hash-ordered
//! containers in this crate).

use std::collections::BTreeMap;
use std::sync::Arc;

struct Entry {
    bytes: Arc<Vec<u8>>,
    tick: u64,
}

/// An LRU byte-budgeted map from job ID to encoded profile bytes.
///
/// Values are `Arc`ed so a hit can be served while the lock is released;
/// eviction drops the cache's reference without invalidating in-flight
/// responses.
pub struct ResultCache {
    entries: BTreeMap<u64, Entry>,
    /// tick → id index ordering entries from coldest to hottest. Ticks are
    /// unique (monotonic counter), so this is a faithful LRU order.
    by_tick: BTreeMap<u64, u64>,
    used_bytes: usize,
    budget_bytes: usize,
    next_tick: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `budget_bytes` of encoded profiles.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            by_tick: BTreeMap::new(),
            used_bytes: 0,
            budget_bytes,
            next_tick: 0,
            evictions: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        let t = self.next_tick;
        self.next_tick += 1;
        t
    }

    /// Inserts `bytes` under `id`, evicting least-recently-used entries
    /// until the budget holds. Re-inserting an existing ID refreshes both
    /// bytes and recency. An item larger than the whole budget is refused
    /// (the caller still owns the bytes; it just isn't cached).
    pub fn insert(&mut self, id: u64, bytes: Arc<Vec<u8>>) {
        if bytes.len() > self.budget_bytes {
            return;
        }
        self.remove(id);
        let tick = self.bump();
        self.used_bytes += bytes.len();
        self.by_tick.insert(tick, id);
        self.entries.insert(id, Entry { bytes, tick });
        while self.used_bytes > self.budget_bytes {
            let Some((_, &cold_id)) = self.by_tick.iter().next() else {
                break;
            };
            if cold_id == id {
                // Never evict what was just inserted; budget check above
                // guarantees it fits alone.
                break;
            }
            self.remove(cold_id);
            self.evictions += 1;
        }
    }

    /// Looks up `id`, refreshing its recency on a hit.
    pub fn get(&mut self, id: u64) -> Option<Arc<Vec<u8>>> {
        let tick = self.bump();
        let entry = self.entries.get_mut(&id)?;
        self.by_tick.remove(&entry.tick);
        entry.tick = tick;
        self.by_tick.insert(tick, id);
        Some(Arc::clone(&entry.bytes))
    }

    /// True when `id` is cached, without touching recency.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Removes `id` if present (not counted as an eviction).
    pub fn remove(&mut self, id: u64) {
        if let Some(old) = self.entries.remove(&id) {
            self.by_tick.remove(&old.tick);
            self.used_bytes -= old.bytes.len();
        }
    }

    /// Total bytes of cached values.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Cumulative count of budget-pressure evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(fill: u8, len: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; len])
    }

    #[test]
    fn hit_returns_inserted_bytes() {
        let mut c = ResultCache::new(1024);
        c.insert(7, blob(0xAB, 10));
        assert!(c.contains(7));
        assert_eq!(c.get(7).as_deref().map(Vec::as_slice), Some(&[0xAB; 10][..]));
        assert_eq!(c.get(8), None);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.budget_bytes(), 1024);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ResultCache::new(30);
        c.insert(1, blob(1, 10));
        c.insert(2, blob(2, 10));
        c.insert(3, blob(3, 10));
        // Touch 1 so 2 becomes the coldest entry.
        assert!(c.get(1).is_some());
        c.insert(4, blob(4, 10));
        assert!(c.contains(1));
        assert!(!c.contains(2), "coldest entry must go first");
        assert!(c.contains(3));
        assert!(c.contains(4));
        assert_eq!(c.evictions(), 1);
        assert!(c.used_bytes() <= 30);
    }

    #[test]
    fn reinsert_refreshes_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(1, blob(1, 40));
        c.insert(1, blob(2, 20));
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).as_deref().map(Vec::as_slice), Some(&[2u8; 20][..]));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn oversized_items_are_refused_not_thrashed() {
        let mut c = ResultCache::new(16);
        c.insert(1, blob(1, 8));
        c.insert(2, blob(2, 64));
        assert!(c.contains(1), "oversized insert must not evict residents");
        assert!(!c.contains(2));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut c = ResultCache::new(64);
        c.insert(1, blob(1, 8));
        c.remove(1);
        c.remove(99);
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn hits_keep_in_flight_arcs_alive_across_eviction() {
        let mut c = ResultCache::new(10);
        c.insert(1, blob(7, 10));
        let held = c.get(1).expect("resident");
        c.insert(2, blob(8, 10));
        assert!(!c.contains(1));
        assert_eq!(held.as_slice(), &[7u8; 10][..]);
    }
}
