//! A std-only client for the profiling service, used by the smoke test
//! and the load generator.
//!
//! One [`Client`] owns one keep-alive connection. Requests reconnect
//! once on transport error (the server may have reaped an idle
//! connection between requests), then give up.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use reaper_core::ProfilingRequest;

use crate::api;
use crate::http::{self, ClientResponse};
use crate::json::{self, Value};

/// What a service interaction can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(io::Error),
    /// The response was not parseable HTTP or JSON.
    Protocol(String),
    /// The server answered with an unexpected status code.
    Status(u16, String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status(code, body) => {
                write!(f, "unexpected status {code}: {body}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The parsed result of a job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The content-addressed job ID (16 hex digits).
    pub job_id: String,
    /// Job status at submission time.
    pub status: String,
    /// True when this submission matched an existing record.
    pub deduped: bool,
}

/// A keep-alive HTTP client bound to one server address.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Creates a client for `addr`; connects lazily on first use.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, conn: None }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Request/response round-trips on one connection stall ~40 ms
            // under Nagle + delayed ACK; this is a latency-sensitive RPC
            // pattern, so disable coalescing.
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        // invariant: the branch above filled `conn`
        match self.conn.as_mut() {
            Some(c) => Ok(c),
            None => Err(io::Error::other("connection vanished")),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let conn = self.connect()?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: reaper-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        conn.get_mut().write_all(&message)?;
        conn.get_mut().flush()?;
        http::read_response(conn).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request, reconnecting once if the kept-alive connection
    /// turned out to be dead.
    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let had_conn = self.conn.is_some();
        match self.request_once(method, target, body) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                if had_conn {
                    self.request_once(method, target, body)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn parse_json(resp: &ClientResponse) -> Result<Value, ClientError> {
        let text = core::str::from_utf8(&resp.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 body".to_string()))?;
        json::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect_status(resp: ClientResponse, want: u16) -> Result<ClientResponse, ClientError> {
        if resp.status == want {
            Ok(resp)
        } else {
            let body = String::from_utf8_lossy(&resp.body).into_owned();
            Err(ClientError::Status(resp.status, body))
        }
    }

    /// Submits `request` via `POST /v1/jobs`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn submit(&mut self, request: &ProfilingRequest) -> Result<SubmitReceipt, ClientError> {
        let body = api::encode_job_body(request);
        let resp = self.request("POST", "/v1/jobs", body.as_bytes())?;
        let resp = Self::expect_status(resp, 200)?;
        let doc = Self::parse_json(&resp)?;
        let field = |key: &str| -> Result<String, ClientError> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("receipt missing `{key}`")))
        };
        Ok(SubmitReceipt {
            job_id: field("job_id")?,
            status: field("status")?,
            deduped: doc
                .get("deduped")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }

    /// Fetches the status document for `job_id` (`GET /v1/jobs/{id}`).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn job_status(&mut self, job_id: &str) -> Result<Value, ClientError> {
        let resp = self.request("GET", &format!("/v1/jobs/{job_id}"), &[])?;
        let resp = Self::expect_status(resp, 200)?;
        Self::parse_json(&resp)
    }

    /// Fetches the binary profile for `job_id`, or `None` while the job
    /// is still queued or running (202).
    ///
    /// # Errors
    /// [`ClientError`] on transport or protocol failure, and
    /// [`ClientError::Status`] for 4xx/5xx (including 410 after
    /// eviction).
    pub fn profile_bytes(&mut self, job_id: &str) -> Result<Option<Vec<u8>>, ClientError> {
        let resp = self.request("GET", &format!("/v1/profiles/{job_id}"), &[])?;
        match resp.status {
            200 => Ok(Some(resp.body)),
            202 => Ok(None),
            code => {
                let body = String::from_utf8_lossy(&resp.body).into_owned();
                Err(ClientError::Status(code, body))
            }
        }
    }

    /// Polls until the profile is available, sleeping `poll_interval`
    /// between attempts, for at most `max_polls` attempts.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the poll budget runs out; otherwise
    /// as [`Client::profile_bytes`].
    pub fn wait_for_profile(
        &mut self,
        job_id: &str,
        poll_interval: Duration,
        max_polls: usize,
    ) -> Result<Vec<u8>, ClientError> {
        for _ in 0..max_polls {
            if let Some(bytes) = self.profile_bytes(job_id)? {
                return Ok(bytes);
            }
            thread::sleep(poll_interval);
        }
        Err(ClientError::Protocol(format!(
            "job {job_id} did not finish within {max_polls} polls"
        )))
    }

    /// Fetches the Prometheus metrics page as text.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let resp = self.request("GET", "/metrics", &[])?;
        let resp = Self::expect_status(resp, 200)?;
        String::from_utf8(resp.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 metrics body".to_string()))
    }

    /// Checks `GET /healthz`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn healthz(&mut self) -> Result<bool, ClientError> {
        let resp = self.request("GET", "/healthz", &[])?;
        let resp = Self::expect_status(resp, 200)?;
        let doc = Self::parse_json(&resp)?;
        Ok(doc.get("ok").and_then(Value::as_bool).unwrap_or(false))
    }
}
