//! A std-only client for the profiling service, used by the smoke test
//! and the load generator.
//!
//! One [`Client`] owns one keep-alive connection. Requests reconnect
//! once on transport error (the server may have reaped an idle
//! connection between requests), then give up.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use reaper_core::ProfilingRequest;
use reaper_exec::sync::lock;

use crate::api;
use crate::http::{self, ClientResponse};
use crate::json::{self, Value};

/// What a service interaction can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(io::Error),
    /// The response was not parseable HTTP or JSON.
    Protocol(String),
    /// The server answered with an unexpected status code.
    Status(u16, String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status(code, body) => {
                write!(f, "unexpected status {code}: {body}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The parsed result of a job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The content-addressed job ID (16 hex digits).
    pub job_id: String,
    /// Job status at submission time.
    pub status: String,
    /// True when this submission matched an existing record.
    pub deduped: bool,
}

/// Outcome of a conditional profile read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileFetch {
    /// The job is still queued or running (202).
    Pending,
    /// Fresh bytes with their strong ETag (200).
    Fresh {
        /// The encoded `RPF1` profile.
        bytes: Vec<u8>,
        /// The head's strong ETag.
        etag: String,
    },
    /// The caller's ETag still matches the head (304); no bytes moved.
    NotModified {
        /// The (unchanged) strong ETag.
        etag: String,
    },
}

/// Outcome of a `?since=` delta read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaFetch {
    /// `since` is already the head epoch (304).
    NotModified {
        /// The head's strong ETag.
        etag: String,
    },
    /// Concatenated `RPD1` messages covering `since → head`.
    Chain {
        /// The wire bytes (one `RPD1` message per epoch).
        bytes: Vec<u8>,
        /// Head epoch after applying the chain.
        epoch: u64,
        /// The head's strong ETag.
        etag: String,
    },
    /// The log compacted past `since`; a full `RPF1` snapshot instead.
    Full {
        /// The encoded head profile.
        bytes: Vec<u8>,
        /// Head epoch of the snapshot.
        epoch: u64,
        /// The head's strong ETag.
        etag: String,
    },
}

/// The parsed result of an epoch push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushReceipt {
    /// Head epoch after the push.
    pub epoch: u64,
    /// False when the snapshot matched the head (no epoch consumed).
    pub changed: bool,
    /// True when the push triggered log compaction.
    pub compacted: bool,
    /// True when the push re-based an evicted log.
    pub rebased: bool,
    /// True when the delta payload already existed in the chunk store.
    pub chunk_deduped: bool,
    /// Encoded delta message size, when a delta was appended.
    pub delta_bytes: u64,
    /// The head's strong ETag after the push.
    pub etag: String,
}

/// One event from a watch stream, classified by its leading magic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileUpdate {
    /// An `RPD1` delta message.
    Delta(Vec<u8>),
    /// An `RPF1` full snapshot (served across compaction gaps).
    Full(Vec<u8>),
}

/// A keep-alive HTTP client bound to one server address.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Creates a client for `addr`; connects lazily on first use.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, conn: None }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Request/response round-trips on one connection stall ~40 ms
            // under Nagle + delayed ACK; this is a latency-sensitive RPC
            // pattern, so disable coalescing.
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        // invariant: the branch above filled `conn`
        match self.conn.as_mut() {
            Some(c) => Ok(c),
            None => Err(io::Error::other("connection vanished")),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let conn = self.connect()?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: reaper-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        conn.get_mut().write_all(&message)?;
        conn.get_mut().flush()?;
        http::read_response(conn).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request, reconnecting once if the kept-alive connection
    /// turned out to be dead.
    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let had_conn = self.conn.is_some();
        match self.request_once(method, target, body) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                if had_conn {
                    self.request_once(method, target, body)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn parse_json(resp: &ClientResponse) -> Result<Value, ClientError> {
        let text = core::str::from_utf8(&resp.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 body".to_string()))?;
        json::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect_status(resp: ClientResponse, want: u16) -> Result<ClientResponse, ClientError> {
        if resp.status == want {
            Ok(resp)
        } else {
            let body = String::from_utf8_lossy(&resp.body).into_owned();
            Err(ClientError::Status(resp.status, body))
        }
    }

    /// Submits a plain profiling `request` via `POST /v1/jobs`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn submit(&mut self, request: &ProfilingRequest) -> Result<SubmitReceipt, ClientError> {
        self.submit_job(&api::JobRequest::Profiling(request.clone()))
    }

    /// Submits a portfolio race via `POST /v1/jobs`
    /// (`"kind":"portfolio"`).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn submit_portfolio(
        &mut self,
        request: &reaper_portfolio::PortfolioRequest,
    ) -> Result<SubmitReceipt, ClientError> {
        self.submit_job(&api::JobRequest::Portfolio(request.clone()))
    }

    /// Submits a job of either kind via `POST /v1/jobs`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn submit_job(&mut self, request: &api::JobRequest) -> Result<SubmitReceipt, ClientError> {
        let body = api::encode_job_body(request);
        let resp = self.request("POST", "/v1/jobs", body.as_bytes())?;
        let resp = Self::expect_status(resp, 200)?;
        let doc = Self::parse_json(&resp)?;
        let field = |key: &str| -> Result<String, ClientError> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("receipt missing `{key}`")))
        };
        Ok(SubmitReceipt {
            job_id: field("job_id")?,
            status: field("status")?,
            deduped: doc
                .get("deduped")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }

    /// Fetches the status document for `job_id` (`GET /v1/jobs/{id}`).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn job_status(&mut self, job_id: &str) -> Result<Value, ClientError> {
        let resp = self.request("GET", &format!("/v1/jobs/{job_id}"), &[])?;
        let resp = Self::expect_status(resp, 200)?;
        Self::parse_json(&resp)
    }

    /// Fetches the binary profile for `job_id`, or `None` while the job
    /// is still queued or running (202).
    ///
    /// # Errors
    /// [`ClientError`] on transport or protocol failure, and
    /// [`ClientError::Status`] for 4xx/5xx (including 410 after
    /// eviction).
    pub fn profile_bytes(&mut self, job_id: &str) -> Result<Option<Vec<u8>>, ClientError> {
        let resp = self.request("GET", &format!("/v1/profiles/{job_id}"), &[])?;
        match resp.status {
            200 => Ok(Some(resp.body)),
            202 => Ok(None),
            code => {
                let body = String::from_utf8_lossy(&resp.body).into_owned();
                Err(ClientError::Status(code, body))
            }
        }
    }

    fn request_with_headers(
        &mut self,
        method: &str,
        target: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let had_conn = self.conn.is_some();
        match self.request_once_with_headers(method, target, extra_headers, body) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                if had_conn {
                    self.request_once_with_headers(method, target, extra_headers, body)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn request_once_with_headers(
        &mut self,
        method: &str,
        target: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let conn = self.connect()?;
        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: reaper-serve\r\n");
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        conn.get_mut().write_all(&message)?;
        conn.get_mut().flush()?;
        http::read_response(conn).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn require_etag(resp: &ClientResponse) -> Result<String, ClientError> {
        resp.header("etag")
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("response missing etag".to_string()))
    }

    /// Conditionally fetches the head profile: sends `If-None-Match`
    /// when `etag` is given and maps 200/202/304 to [`ProfileFetch`].
    ///
    /// # Errors
    /// [`ClientError`] on transport or protocol failure, and
    /// [`ClientError::Status`] for 4xx/5xx (including 410 after
    /// eviction).
    pub fn profile_conditional(
        &mut self,
        job_id: &str,
        etag: Option<&str>,
    ) -> Result<ProfileFetch, ClientError> {
        let target = format!("/v1/profiles/{job_id}");
        let headers: Vec<(&str, &str)> = match etag {
            Some(tag) => vec![("if-none-match", tag)],
            None => Vec::new(),
        };
        let resp = self.request_with_headers("GET", &target, &headers, &[])?;
        match resp.status {
            200 => {
                let etag = Self::require_etag(&resp)?;
                Ok(ProfileFetch::Fresh {
                    bytes: resp.body,
                    etag,
                })
            }
            202 => Ok(ProfileFetch::Pending),
            304 => {
                let etag = Self::require_etag(&resp)?;
                Ok(ProfileFetch::NotModified { etag })
            }
            code => {
                let body = String::from_utf8_lossy(&resp.body).into_owned();
                Err(ClientError::Status(code, body))
            }
        }
    }

    /// Pushes a re-profiling snapshot (`RPF1` bytes) as the next epoch
    /// of `job_id`'s profile log.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn push_epoch(
        &mut self,
        job_id: &str,
        profile_bytes: &[u8],
    ) -> Result<PushReceipt, ClientError> {
        let target = format!("/v1/profiles/{job_id}/epochs");
        let resp = self.request_with_headers("POST", &target, &[], profile_bytes)?;
        let resp = Self::expect_status(resp, 200)?;
        let etag = Self::require_etag(&resp)?;
        let doc = Self::parse_json(&resp)?;
        let get_u64 = |key: &str| -> Result<u64, ClientError> {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("push receipt missing `{key}`")))
        };
        let get_bool = |key: &str| -> Result<bool, ClientError> {
            doc.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| ClientError::Protocol(format!("push receipt missing `{key}`")))
        };
        Ok(PushReceipt {
            epoch: get_u64("epoch")?,
            changed: get_bool("changed")?,
            compacted: get_bool("compacted")?,
            rebased: get_bool("rebased")?,
            chunk_deduped: get_bool("chunk_deduped")?,
            delta_bytes: get_u64("delta_bytes")?,
            etag,
        })
    }

    /// Fetches the minimal update from epoch `since` to the head
    /// (`GET /v1/profiles/{id}/delta?since=`).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or unexpected statuses
    /// (including 410 when the fallback bytes were evicted).
    pub fn delta_since(&mut self, job_id: &str, since: u64) -> Result<DeltaFetch, ClientError> {
        let target = format!("/v1/profiles/{job_id}/delta?since={since}");
        let resp = self.request_with_headers("GET", &target, &[], &[])?;
        match resp.status {
            200 => {
                let etag = Self::require_etag(&resp)?;
                let epoch = resp
                    .header("x-reaper-epoch")
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| {
                        ClientError::Protocol("delta response missing x-reaper-epoch".to_string())
                    })?;
                match resp.header("x-reaper-delta") {
                    Some("chain") => Ok(DeltaFetch::Chain {
                        bytes: resp.body,
                        epoch,
                        etag,
                    }),
                    Some("full") => Ok(DeltaFetch::Full {
                        bytes: resp.body,
                        epoch,
                        etag,
                    }),
                    other => Err(ClientError::Protocol(format!(
                        "unexpected x-reaper-delta: {other:?}"
                    ))),
                }
            }
            304 => {
                let etag = Self::require_etag(&resp)?;
                Ok(DeltaFetch::NotModified { etag })
            }
            code => {
                let body = String::from_utf8_lossy(&resp.body).into_owned();
                Err(ClientError::Status(code, body))
            }
        }
    }

    /// Subscribes to `job_id`'s profile log via the chunked watch
    /// long-poll and collects the stream's events. Blocks until the
    /// server closes the stream (its long-poll deadline, `max_events`
    /// events, or shutdown).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn watch(
        &mut self,
        job_id: &str,
        since: Option<u64>,
        timeout_ms: u64,
        max_events: u64,
    ) -> Result<Vec<ProfileUpdate>, ClientError> {
        let mut target =
            format!("/v1/profiles/{job_id}/watch?timeout_ms={timeout_ms}&max_events={max_events}");
        if let Some(epoch) = since {
            target.push_str(&format!("&since={epoch}"));
        }
        let conn = self.connect()?;
        let head = format!("GET {target} HTTP/1.1\r\nhost: reaper-serve\r\ncontent-length: 0\r\n\r\n");
        conn.get_mut().write_all(head.as_bytes())?;
        conn.get_mut().flush()?;
        let (status, headers) =
            http::read_response_head(conn).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if status != 200 {
            // Error bodies are content-length framed; drain per headers.
            let length = headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0);
            let mut body = vec![0u8; length];
            std::io::Read::read_exact(conn, &mut body)?;
            return Err(ClientError::Status(
                status,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if !chunked {
            return Err(ClientError::Protocol(
                "watch response is not chunked".to_string(),
            ));
        }
        let mut events = Vec::new();
        loop {
            let chunk = http::read_chunk(conn).map_err(|e| ClientError::Protocol(e.to_string()))?;
            let Some(data) = chunk else { break };
            let event = match data.first_chunk::<4>() {
                Some(b"RPD1") => ProfileUpdate::Delta(data),
                Some(b"RPF1") => ProfileUpdate::Full(data),
                _ => {
                    return Err(ClientError::Protocol(
                        "watch event with unknown magic".to_string(),
                    ))
                }
            };
            events.push(event);
        }
        Ok(events)
    }

    /// Polls until the profile is available, sleeping `poll_interval`
    /// between attempts, for at most `max_polls` attempts.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the poll budget runs out; otherwise
    /// as [`Client::profile_bytes`].
    pub fn wait_for_profile(
        &mut self,
        job_id: &str,
        poll_interval: Duration,
        max_polls: usize,
    ) -> Result<Vec<u8>, ClientError> {
        for _ in 0..max_polls {
            if let Some(bytes) = self.profile_bytes(job_id)? {
                return Ok(bytes);
            }
            thread::sleep(poll_interval);
        }
        Err(ClientError::Protocol(format!(
            "job {job_id} did not finish within {max_polls} polls"
        )))
    }

    /// Fetches the Prometheus metrics page as text.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let resp = self.request("GET", "/metrics", &[])?;
        let resp = Self::expect_status(resp, 200)?;
        String::from_utf8(resp.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 metrics body".to_string()))
    }

    /// Checks `GET /healthz`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or non-200 responses.
    pub fn healthz(&mut self) -> Result<bool, ClientError> {
        let resp = self.request("GET", "/healthz", &[])?;
        let resp = Self::expect_status(resp, 200)?;
        let doc = Self::parse_json(&resp)?;
        Ok(doc.get("ok").and_then(Value::as_bool).unwrap_or(false))
    }
}

/// A thread-safe pool of keep-alive connections to one target address.
///
/// The fleet router checks a connection out per proxied request and
/// returns it on a keep-alive success, so shard round-trips skip the
/// TCP handshake. A pooled connection that turns out to be stale (the
/// shard reaped it while idle, or the shard restarted) fails its
/// round-trip; the pool then dials one fresh connection and retries the
/// request exactly once — errors on a fresh connection propagate.
///
/// Locking: the mutex guards only the idle list and target address;
/// it is never held across connect/read/write.
pub struct ConnectionPool {
    max_idle: usize,
    state: Mutex<PoolState>,
}

struct PoolState {
    addr: SocketAddr,
    idle: Vec<BufReader<TcpStream>>,
}

impl ConnectionPool {
    /// Creates a pool dialing `addr`, keeping at most `max_idle`
    /// connections warm (minimum 1).
    pub fn new(addr: SocketAddr, max_idle: usize) -> Self {
        Self {
            max_idle: max_idle.max(1),
            state: Mutex::new(PoolState {
                addr,
                idle: Vec::new(),
            }),
        }
    }

    /// The current target address.
    pub fn addr(&self) -> SocketAddr {
        lock(&self.state).addr
    }

    /// Repoints the pool at a new address (a shard restarted on a fresh
    /// ephemeral port) and drops every connection to the old one.
    pub fn retarget(&self, addr: SocketAddr) {
        let mut state = lock(&self.state);
        state.addr = addr;
        state.idle.clear();
    }

    /// Number of idle pooled connections.
    pub fn idle_count(&self) -> usize {
        lock(&self.state).idle.len()
    }

    fn checkout(&self) -> (SocketAddr, Option<BufReader<TcpStream>>) {
        let mut state = lock(&self.state);
        let conn = state.idle.pop();
        (state.addr, conn)
    }

    fn give_back(&self, addr: SocketAddr, conn: BufReader<TcpStream>) {
        let mut state = lock(&self.state);
        // A retarget while this connection was checked out makes it a
        // connection to the wrong server: drop it.
        if state.addr == addr && state.idle.len() < self.max_idle {
            state.idle.push(conn);
        }
    }

    fn dial(addr: SocketAddr) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    fn roundtrip(
        conn: &mut BufReader<TcpStream>,
        method: &str,
        target: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: reaper-serve\r\n");
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        conn.get_mut().write_all(&message)?;
        conn.get_mut().flush()?;
        http::read_response(conn).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request: over a pooled connection when one is idle
    /// (retrying once on a fresh dial if it proves stale), else over a
    /// fresh dial. Keep-alive successes return the connection to the
    /// pool.
    ///
    /// # Errors
    /// [`ClientError`] on connect failure or a transport/protocol
    /// failure on a *fresh* connection; stale-pooled failures are
    /// retried internally first.
    pub fn request(
        &self,
        method: &str,
        target: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let (addr, pooled) = self.checkout();
        if let Some(mut conn) = pooled {
            if let Ok(resp) = Self::roundtrip(&mut conn, method, target, extra_headers, body) {
                self.finish(addr, conn, &resp);
                return Ok(resp);
            }
            // Stale pooled connection: fall through to one fresh dial.
        }
        let mut conn = Self::dial(addr)?;
        let resp = Self::roundtrip(&mut conn, method, target, extra_headers, body)?;
        self.finish(addr, conn, &resp);
        Ok(resp)
    }

    fn finish(&self, addr: SocketAddr, conn: BufReader<TcpStream>, resp: &ClientResponse) {
        let close = resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !close {
            self.give_back(addr, conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted server: each accepted connection answers exactly one
    /// request (claiming keep-alive) then closes, so any pooled
    /// connection is stale by the time the client reuses it.
    fn one_shot_server(connections: usize) -> (SocketAddr, Arc<AtomicUsize>, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepted);
        let handle = thread::spawn(move || {
            for _ in 0..connections {
                let (mut stream, _) = listener.accept().unwrap();
                counter.fetch_add(1, Ordering::SeqCst);
                let mut head = Vec::new();
                let mut byte = [0u8; 1];
                while !head.ends_with(b"\r\n\r\n") {
                    stream.read_exact(&mut byte).unwrap();
                    head.push(byte[0]);
                }
                stream
                    .write_all(
                        b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\nok",
                    )
                    .unwrap();
                // Dropping the stream closes it: the connection the
                // pool kept is now stale.
            }
        });
        (addr, accepted, handle)
    }

    #[test]
    fn pool_retries_once_on_stale_connection() {
        let (addr, accepted, handle) = one_shot_server(2);
        let pool = ConnectionPool::new(addr, 4);

        let resp = pool.request("GET", "/healthz", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(pool.idle_count(), 1, "keep-alive success returns to pool");

        // The server closed that socket after responding; the reuse
        // must detect the stale connection and retry on a fresh dial
        // instead of surfacing the transport error.
        let resp = pool.request("GET", "/healthz", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            2,
            "stale reuse dialed a fresh connection"
        );

        handle.join().unwrap();
    }

    #[test]
    fn retarget_clears_pooled_connections() {
        let (addr, _accepted, handle) = one_shot_server(1);
        let pool = ConnectionPool::new(addr, 4);
        let resp = pool.request("GET", "/healthz", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(pool.idle_count(), 1);

        let (new_addr, new_accepted, new_handle) = one_shot_server(1);
        pool.retarget(new_addr);
        assert_eq!(pool.idle_count(), 0, "retarget drops old connections");
        let resp = pool.request("GET", "/healthz", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(new_accepted.load(Ordering::SeqCst), 1);

        handle.join().unwrap();
        new_handle.join().unwrap();
    }
}
