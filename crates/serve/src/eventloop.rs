//! A hand-rolled `poll(2)` readiness loop: one thread drives every
//! connected socket, so concurrency is bounded by file descriptors
//! instead of threads (the thread-per-connection model caps out at a
//! few hundred stacks; this loop holds thousands of keep-alive sockets
//! for the cost of a buffer each).
//!
//! ## Shape
//!
//! [`EventLoop::run`] owns the listener and every accepted connection.
//! Each readiness cycle it: polls all registered descriptors, drains
//! the self-wake pipe, applies completed deferred responses, accepts a
//! burst of new connections, feeds readable sockets through the
//! incremental parser ([`crate::http::parse_request_bytes`]), and
//! flushes writable ones. A [`Handler`] classifies each parsed request:
//!
//! * [`Handled::Respond`] — synchronous answer; serialized into the
//!   connection's write buffer immediately (the shard server's only
//!   mode: every `/v1/*` route computes under short critical sections).
//! * [`Handled::Deferred`] — the handler queued the request elsewhere
//!   (the fleet router's proxy pool); a worker later calls
//!   [`EventLoopHandle::complete`], which wakes the loop via the
//!   self-pipe. While a response is in flight the connection's reads
//!   are paused, so a client gets strict request/response ordering.
//! * [`Handled::TakeOver`] — the request needs a blocking stream (the
//!   chunked watch long-poll); the socket is handed to a dedicated
//!   thread along with any bytes already buffered past the request.
//!
//! ## Concurrency discipline
//!
//! The loop takes exactly one lock — the completion queue — and never
//! holds it across socket I/O (L2): completions are `mem::take`n out
//! under the guard and applied after it drops. The waker is a loopback
//! TCP pair written without any lock (`&TcpStream` is `Write`).
//!
//! ## The one `unsafe` block
//!
//! The workspace denies `unsafe_code`; the [`sys`] submodule carries
//! the single audited exception — the `poll(2)` FFI declaration and
//! call. `std` exposes no readiness API, and the no-new-dependencies
//! rule forbids `libc`/`mio`, so the binding lives here: one
//! `#[repr(C)]` struct matching `struct pollfd` and one foreign call
//! wrapped in a safe slice-based API.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use reaper_exec::sync::lock;

use crate::http::{self, Request, Response};

/// The `poll(2)` binding: the workspace's single unsafe exception.
///
/// Layout facts this relies on (stable POSIX ABI, checked against the
/// kernel/glibc headers): `struct pollfd { int fd; short events; short
/// revents; }`, `nfds_t` is an unsigned integer wide enough for a file
/// descriptor count, and a millisecond timeout of −1 blocks forever.
pub mod sys {
    use std::io;

    /// Mirror of C `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch (negative = ignore this slot).
        pub fd: i32,
        /// Requested readiness events.
        pub events: i16,
        /// Kernel-reported readiness events.
        pub revents: i16,
    }

    /// Data may be read without blocking.
    pub const POLLIN: i16 = 0x001;
    /// Data may be written without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always reported, never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always reported, never requested).
    pub const POLLHUP: i16 = 0x010;

    #[allow(unsafe_code)] // the workspace's single FFI exception; see module docs
    mod ffi {
        extern "C" {
            pub fn poll(fds: *mut super::PollFd, nfds: u64, timeout: i32) -> i32;
        }
    }

    /// Safe wrapper over `poll(2)`: waits up to `timeout_ms` for any of
    /// `fds` to become ready, returning how many are.
    ///
    /// # Errors
    /// The raw OS error, including `Interrupted` for `EINTR` (callers
    /// should retry).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only
        // `revents` within the `fds.len()` entries we declare.
        #[allow(unsafe_code)]
        let rc = unsafe { ffi::poll(fds.as_mut_ptr(), reaper_exec::num::to_u64(fds.len()), timeout_ms) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(usize::try_from(rc).unwrap_or(0))
    }
}

/// Opaque identity of one connection within its event loop; pass it
/// back to [`EventLoopHandle::complete`] to answer a deferred request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConnToken(u64);

/// A takeover continuation: receives the raw socket (restored to
/// blocking mode) plus any bytes already read past the request.
pub type TakeoverFn = Box<dyn FnOnce(TcpStream, Vec<u8>) + Send + 'static>;

/// What a [`Handler`] did with a parsed request.
pub enum Handled {
    /// Answer now; the loop serializes it into the write buffer.
    Respond(Response),
    /// The handler queued the work; [`EventLoopHandle::complete`] will
    /// deliver the response later. Reads on this connection pause until
    /// then.
    Deferred,
    /// Hand the raw socket plus residual bytes to the closure, on its
    /// own thread.
    TakeOver(TakeoverFn),
}

/// Request dispatcher plugged into an [`EventLoop`].
pub trait Handler: Send + Sync + 'static {
    /// Classify one request. `conn` identifies the connection for a
    /// later [`EventLoopHandle::complete`] when deferring.
    fn handle(&self, request: Request, conn: ConnToken) -> Handled;
}

/// Clonable handle for completing deferred responses from worker
/// threads; wakes the loop through the self-pipe.
#[derive(Clone)]
pub struct EventLoopHandle {
    completions: Arc<Mutex<Vec<(u64, Response)>>>,
    waker: Arc<TcpStream>,
}

impl EventLoopHandle {
    /// Queues `response` for the deferred request on `conn` and wakes
    /// the loop. A completion for a connection that has since closed is
    /// discarded silently.
    pub fn complete(&self, conn: ConnToken, response: Response) {
        let mut pending = lock(&self.completions);
        pending.push((conn.0, response));
        drop(pending);
        // Nonblocking one-byte nudge; a full pipe already guarantees a
        // pending wakeup, so the result is irrelevant.
        let _ = (&*self.waker).write(&[1u8]);
    }
}

/// One registered connection's state between readiness cycles.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a complete request.
    read_buf: Vec<u8>,
    /// Serialized responses not yet flushed to the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// A deferred response is in flight: stop parsing further requests.
    awaiting: bool,
    /// Connection disposition recorded when the request was deferred.
    keep_alive_pending: bool,
    /// Close once `write_buf` drains.
    close_after_write: bool,
    /// Peer sent EOF; close once pending work settles.
    peer_closed: bool,
    /// Transport error or protocol violation: close now.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            awaiting: false,
            keep_alive_pending: true,
            close_after_write: false,
            peer_closed: false,
            dead: false,
        }
    }

    /// True once nothing keeps this connection alive.
    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        let flushed = self.written >= self.write_buf.len();
        (self.close_after_write && flushed) || (self.peer_closed && flushed && !self.awaiting)
    }
}

/// Poll timeout per readiness cycle; bounds reaction time to the
/// shutdown flag exactly like the blocking model's `READ_TIMEOUT`.
const POLL_TICK_MS: i32 = 100;
/// Read granularity per readable socket per cycle.
const READ_CHUNK: usize = 8 * 1024;

/// A non-blocking connection multiplexer: listener, self-wake pipe, and
/// completion queue. Construct with [`EventLoop::new`], grab handles
/// with [`EventLoop::handle`], then consume it with [`EventLoop::run`]
/// on a dedicated thread.
pub struct EventLoop {
    listener: TcpListener,
    waker_rx: TcpStream,
    waker_tx: Arc<TcpStream>,
    completions: Arc<Mutex<Vec<(u64, Response)>>>,
    max_connections: usize,
}

impl EventLoop {
    /// Wraps a bound listener, switching it to non-blocking mode and
    /// building the loopback self-wake pair.
    ///
    /// # Errors
    /// Socket configuration or loopback-pair setup failures.
    pub fn new(listener: TcpListener, max_connections: usize) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        // Self-pipe via loopback TCP: std offers no portable pipe, and
        // the fleet's sockets are all loopback anyway.
        let pair_listener = TcpListener::bind("127.0.0.1:0")?;
        let waker_tx = TcpStream::connect(pair_listener.local_addr()?)?;
        let (waker_rx, _) = pair_listener.accept()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        Ok(Self {
            listener,
            waker_rx,
            waker_tx: Arc::new(waker_tx),
            completions: Arc::new(Mutex::new(Vec::new())),
            max_connections: max_connections.max(1),
        })
    }

    /// A handle for worker threads to complete deferred responses.
    pub fn handle(&self) -> EventLoopHandle {
        EventLoopHandle {
            completions: Arc::clone(&self.completions),
            waker: Arc::clone(&self.waker_tx),
        }
    }

    /// Runs the readiness loop until `shutdown` is raised (poking the
    /// listener with a throwaway connect makes it notice immediately)
    /// or the listener fails fatally. All connections close on return.
    pub fn run<H: Handler>(self, handler: &Arc<H>, shutdown: &AtomicBool) {
        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut next_token: u64 = 0;

        while !shutdown.load(Ordering::SeqCst) {
            // Slot 0: waker. Slot 1: listener (reads gated on capacity).
            // Slots 2..: connections, in `tokens` order.
            let mut fds = Vec::with_capacity(conns.len() + 2);
            fds.push(sys::PollFd {
                fd: fd_of(&self.waker_rx),
                events: sys::POLLIN,
                revents: 0,
            });
            let accept_open = conns.len() < self.max_connections;
            fds.push(sys::PollFd {
                fd: fd_of_listener(&self.listener),
                events: if accept_open { sys::POLLIN } else { 0 },
                revents: 0,
            });
            let mut tokens = Vec::with_capacity(conns.len());
            for (token, conn) in &conns {
                let mut events = 0i16;
                if !conn.awaiting && !conn.dead {
                    events |= sys::POLLIN;
                }
                if conn.written < conn.write_buf.len() {
                    events |= sys::POLLOUT;
                }
                tokens.push(*token);
                fds.push(sys::PollFd {
                    fd: fd_of(&conn.stream),
                    events,
                    revents: 0,
                });
            }

            match sys::poll_fds(&mut fds, POLL_TICK_MS) {
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
            if shutdown.load(Ordering::SeqCst) {
                break;
            }

            let mut waker_ready = false;
            let mut listener_ready = false;
            let mut ready_conns: Vec<(u64, i16)> = Vec::new();
            for (slot, pfd) in fds.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                match slot {
                    0 => waker_ready = true,
                    1 => listener_ready = true,
                    _ => {
                        if let Some(token) = tokens.get(slot - 2) {
                            ready_conns.push((*token, pfd.revents));
                        }
                    }
                }
            }

            if waker_ready {
                drain_waker(&self.waker_rx);
            }
            // Apply deferred completions every cycle (cheap when empty;
            // covers wake bytes lost to a full pipe).
            let pending = {
                let mut guard = lock(&self.completions);
                std::mem::take(&mut *guard)
            };
            for (token, response) in pending {
                if let Some(conn) = conns.get_mut(&token) {
                    let keep = conn.keep_alive_pending;
                    conn.awaiting = false;
                    queue_response(conn, &response, keep);
                    flush_writes(conn);
                }
            }

            if listener_ready && accept_open {
                self.accept_burst(&mut conns, &mut next_token);
            }

            for (token, revents) in ready_conns {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if revents & (sys::POLLERR | sys::POLLHUP) != 0 && revents & sys::POLLIN == 0 {
                    conn.dead = true;
                    continue;
                }
                if revents & sys::POLLIN != 0 {
                    fill_read_buf(conn);
                    if let Some(takeover) = dispatch_requests(conn, token, handler) {
                        if let Some(mut taken) = conns.remove(&token) {
                            let residual = std::mem::take(&mut taken.read_buf);
                            hand_over(taken.stream, residual, takeover);
                        }
                        continue;
                    }
                }
                if revents & sys::POLLOUT != 0 {
                    flush_writes(conn);
                }
            }

            conns.retain(|_, conn| !conn.finished());
        }
    }

    /// Accepts until `WouldBlock` or the connection cap.
    fn accept_burst(&self, conns: &mut BTreeMap<u64, Conn>, next_token: &mut u64) {
        while conns.len() < self.max_connections {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // See Client::connect: loopback keep-alive responses
                    // must not sit in Nagle's buffer.
                    let _ = stream.set_nodelay(true);
                    *next_token = next_token.wrapping_add(1);
                    conns.insert(*next_token, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

/// Raw descriptor of a stream (unix-only, like the module).
fn fd_of(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

/// Raw descriptor of a listener.
fn fd_of_listener(listener: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

/// Discards buffered wake bytes.
fn drain_waker(waker_rx: &TcpStream) {
    let mut sink = [0u8; 64];
    loop {
        match (&*waker_rx).read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything the socket has ready into the connection's buffer.
fn fill_read_buf(conn: &mut Conn) {
    let mut scratch = [0u8; READ_CHUNK];
    loop {
        match (&conn.stream).read(&mut scratch) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                if let Some(chunk) = scratch.get(..n) {
                    conn.read_buf.extend_from_slice(chunk);
                }
                if n < READ_CHUNK {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Parses and dispatches every complete request in the buffer
/// (pipelining), stopping at an incomplete prefix, a deferred response,
/// or a takeover. Returns the takeover closure when one fires.
fn dispatch_requests<H: Handler>(
    conn: &mut Conn,
    token: u64,
    handler: &Arc<H>,
) -> Option<TakeoverFn> {
    while !conn.awaiting && !conn.dead {
        match http::parse_request_bytes(&conn.read_buf) {
            Ok(None) => break,
            Ok(Some((request, consumed))) => {
                conn.read_buf.drain(..consumed);
                let keep = request.keep_alive();
                match handler.handle(request, ConnToken(token)) {
                    Handled::Respond(response) => {
                        queue_response(conn, &response, keep);
                        flush_writes(conn);
                    }
                    Handled::Deferred => {
                        conn.awaiting = true;
                        conn.keep_alive_pending = keep;
                    }
                    Handled::TakeOver(f) => return Some(f),
                }
            }
            Err(err) => {
                // Mirror the blocking path's disposition — answer with
                // a 400 and close — but say why, since we can.
                let response = Response::json(
                    400,
                    crate::api::error_body(&err.to_string()),
                );
                queue_response(conn, &response, false);
                conn.read_buf.clear();
                flush_writes(conn);
                break;
            }
        }
    }
    None
}

/// Serializes a response onto the connection's write buffer.
fn queue_response(conn: &mut Conn, response: &Response, keep_alive: bool) {
    if http::write_response(&mut conn.write_buf, response, keep_alive).is_err() {
        // Unreachable (Vec writes are infallible), but stay honest.
        conn.dead = true;
    }
    if !keep_alive {
        conn.close_after_write = true;
    }
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_writes(conn: &mut Conn) {
    while conn.written < conn.write_buf.len() {
        let Some(pending) = conn.write_buf.get(conn.written..) else {
            break;
        };
        match (&conn.stream).write(pending) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.written = conn.written.saturating_add(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.write_buf.clear();
    conn.written = 0;
}

/// Restores blocking mode and hands the socket to the takeover closure
/// on its own named thread; the closure owns the connection's lifetime
/// (including any keep-alive continuation) from here.
fn hand_over(
    stream: TcpStream,
    residual: Vec<u8>,
    f: Box<dyn FnOnce(TcpStream, Vec<u8>) + Send + 'static>,
) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Thread-spawn failure (fd/memory exhaustion) drops the connection,
    // never the loop.
    let _ = thread::Builder::new()
        .name("reaper-serve-takeover".to_string())
        .spawn(move || f(stream, residual));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_response;
    use std::io::BufReader;
    use std::sync::atomic::AtomicUsize;

    /// Echo-style handler: responds with the path, defers on
    /// `/deferred`, takes over on `/takeover`.
    struct TestHandler {
        handle_slot: Mutex<Option<EventLoopHandle>>,
        deferred: AtomicUsize,
    }

    impl Handler for TestHandler {
        fn handle(&self, request: Request, conn: ConnToken) -> Handled {
            match request.path() {
                "/deferred" => {
                    self.deferred.fetch_add(1, Ordering::SeqCst);
                    let slot = lock(&self.handle_slot);
                    let handle = slot.clone();
                    drop(slot);
                    if let Some(handle) = handle {
                        // Complete from another thread, like a worker.
                        thread::spawn(move || {
                            handle.complete(
                                conn,
                                Response::text(200, "deferred-done".to_string()),
                            );
                        });
                    }
                    Handled::Deferred
                }
                "/takeover" => Handled::TakeOver(Box::new(|mut stream, residual| {
                    let body = format!("taken:{}", residual.len());
                    let response = Response::text(200, body);
                    let _ = http::write_response(&mut stream, &response, false);
                })),
                path => Handled::Respond(Response::text(200, format!("path:{path}"))),
            }
        }
    }

    fn start_loop(handler: Arc<TestHandler>) -> (std::net::SocketAddr, Arc<AtomicBool>, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let event_loop = EventLoop::new(listener, 64).expect("event loop");
        *lock(&handler.handle_slot) = Some(event_loop.handle());
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let joiner = thread::spawn(move || event_loop.run(&handler, &flag));
        (addr, shutdown, joiner)
    }

    fn stop_loop(addr: std::net::SocketAddr, shutdown: &AtomicBool, joiner: thread::JoinHandle<()>) {
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        joiner.join().expect("loop thread");
    }

    #[test]
    fn serves_pipelined_deferred_and_takeover_requests() {
        let handler = Arc::new(TestHandler {
            handle_slot: Mutex::new(None),
            deferred: AtomicUsize::new(0),
        });
        let (addr, shutdown, joiner) = start_loop(Arc::clone(&handler));

        // Keep-alive + pipelining: two requests in one write, two
        // responses in order on one socket.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (&stream)
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .expect("send");
        let first = read_response(&mut reader).expect("first");
        assert_eq!(first.body, b"path:/a");
        let second = read_response(&mut reader).expect("second");
        assert_eq!(second.body, b"path:/b");

        // Deferred: the response arrives via EventLoopHandle::complete
        // from a foreign thread, on the same keep-alive socket.
        (&stream)
            .write_all(b"GET /deferred HTTP/1.1\r\n\r\n")
            .expect("send");
        let deferred = read_response(&mut reader).expect("deferred");
        assert_eq!(deferred.body, b"deferred-done");
        assert_eq!(handler.deferred.load(Ordering::SeqCst), 1);
        drop(reader);
        drop(stream);

        // Takeover: the closure owns the blocking socket and sees the
        // residual pipelined bytes.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (&stream)
            .write_all(b"GET /takeover HTTP/1.1\r\n\r\nXYZ")
            .expect("send");
        let taken = read_response(&mut reader).expect("taken");
        assert_eq!(taken.body, b"taken:3");
        drop(reader);
        drop(stream);

        // Malformed framing: a 400 with connection: close.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (&stream)
            .write_all(b"NOT-HTTP\r\n\r\n")
            .expect("send");
        let bad = read_response(&mut reader).expect("error response");
        assert_eq!(bad.status, 400);
        assert_eq!(bad.header("connection"), Some("close"));
        // ... and the server actually closes.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        assert!(rest.is_empty());

        stop_loop(addr, &shutdown, joiner);
    }

    #[test]
    fn many_idle_connections_coexist_with_service() {
        let handler = Arc::new(TestHandler {
            handle_slot: Mutex::new(None),
            deferred: AtomicUsize::new(0),
        });
        let (addr, shutdown, joiner) = start_loop(Arc::clone(&handler));

        // Park a crowd of idle keep-alive sockets, then verify a fresh
        // request still gets served promptly through the same loop.
        let parked: Vec<TcpStream> = (0..32)
            .map(|_| TcpStream::connect(addr).expect("connect"))
            .collect();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (&stream)
            .write_all(b"GET /live HTTP/1.1\r\n\r\n")
            .expect("send");
        let response = read_response(&mut reader).expect("response");
        assert_eq!(response.body, b"path:/live");
        drop(parked);

        stop_loop(addr, &shutdown, joiner);
    }
}
