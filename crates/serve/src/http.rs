//! A minimal HTTP/1.1 layer over `std::io`: enough of the protocol for
//! the profiling service and its client — request-line + header parsing,
//! `Content-Length` framing, keep-alive, and `Transfer-Encoding:
//! chunked` responses for the watch long-poll — and nothing else (no
//! TLS, no HTTP/2).
//!
//! The reader is written against `BufRead` so the server can *peek*
//! (`fill_buf`) before committing to a request: a read timeout while
//! idle between requests is a normal keep-alive lapse, while a timeout
//! mid-request is a protocol error.

use std::io::{self, BufRead, ErrorKind, Read, Write};

/// Longest accepted request line or single header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request/response body, in bytes.
const MAX_BODY: usize = 1024 * 1024;
/// Largest accepted request head (request line + headers + blank line)
/// for the incremental byte-buffer parser used by the event loop.
const MAX_HEAD: usize = 64 * 1024;

/// Why reading an HTTP message failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer went idle past the socket read timeout *between*
    /// requests; the connection should be closed quietly.
    Timeout,
    /// The message violates the subset of HTTP/1.1 this module speaks.
    Malformed(&'static str),
    /// A line, header block, or body exceeded its size cap.
    TooLarge(&'static str),
    /// The underlying transport failed mid-message.
    Io(io::Error),
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "idle timeout"),
            HttpError::Malformed(what) => write!(f, "malformed http message: {what}"),
            HttpError::TooLarge(what) => write!(f, "http message too large: {what}"),
            HttpError::Io(e) => write!(f, "http transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request: method, target (path + optional query), lowercased
/// headers, body.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, e.g. `/v1/jobs/abc?format=json`.
    pub target: String,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query string after `?`, if any.
    pub fn query(&self) -> Option<&str> {
        let (_, q) = self.target.split_once('?')?;
        Some(q)
    }

    /// True when the query string contains `key=value` as one `&`-separated
    /// component.
    pub fn query_has(&self, key: &str, value: &str) -> bool {
        self.query()
            .is_some_and(|q| q.split('&').any(|kv| kv.split_once('=') == Some((key, value))))
    }

    /// Value of the first `key=value` query component for `key`.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .find_map(|kv| match kv.split_once('=') {
                Some((k, v)) if k == key => Some(v),
                _ => None,
            })
    }

    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// True unless the client sent `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one CRLF- (or LF-) terminated line, stripped of its terminator.
fn read_line<R: BufRead>(reader: &mut R, what: &'static str) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.by_ref().take(MAX_LINE).read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Malformed("unexpected end of stream"));
    }
    if !line.ends_with('\n') {
        return Err(HttpError::TooLarge(what));
    }
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    Ok(line)
}

/// Lowercased `(name, value)` header pairs.
pub type Headers = Vec<(String, String)>;

/// Reads the header block up to and including the blank line.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Headers, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// Parses the shared header/body tail of a request or response.
fn read_headers_and_body<R: BufRead>(reader: &mut R) -> Result<(Headers, Vec<u8>), HttpError> {
    let headers = read_headers(reader)?;

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if chunked {
        // Drain the whole chunked stream into one body (the incremental
        // reader for long-poll subscribers is `read_chunk`).
        let mut body = Vec::new();
        while let Some(chunk) = read_chunk(reader)? {
            if body.len() + chunk.len() > MAX_BODY {
                return Err(HttpError::TooLarge("chunked body"));
            }
            body.extend_from_slice(&chunk);
        }
        return Ok((headers, body));
    }

    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("unparsable content-length"))?,
    };
    if length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok((headers, body))
}

/// Reads one `Transfer-Encoding: chunked` chunk: `Some(data)` for a data
/// chunk, `None` for the terminal zero-size chunk.
///
/// # Errors
/// [`HttpError`] for malformed chunk framing, oversized chunks, and
/// transport failures.
pub fn read_chunk<R: BufRead>(reader: &mut R) -> Result<Option<Vec<u8>>, HttpError> {
    let size_line = read_line(reader, "chunk size line")?;
    // Ignore chunk extensions after ';' (we never send them).
    let size_text = size_line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_text, 16)
        .map_err(|_| HttpError::Malformed("unparsable chunk size"))?;
    if size > MAX_BODY {
        return Err(HttpError::TooLarge("chunk"));
    }
    if size == 0 {
        // Terminal chunk: consume the (empty) trailer section.
        loop {
            let line = read_line(reader, "chunk trailer")?;
            if line.is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let sep = read_line(reader, "chunk separator")?;
    if !sep.is_empty() {
        return Err(HttpError::Malformed("chunk data not CRLF-terminated"));
    }
    Ok(Some(data))
}

/// Reads one request from a keep-alive connection.
///
/// Returns `Ok(None)` on clean EOF before any request byte (the client
/// closed between requests). A read timeout in the same position maps to
/// [`HttpError::Timeout`] so callers can poll a shutdown flag and come
/// back; any timeout *after* the first byte is a hard error.
///
/// # Errors
/// [`HttpError`] for timeouts, protocol violations, oversized messages,
/// and transport failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    // Peek before parsing so idle-timeout and clean-close are
    // distinguishable from a malformed request.
    match reader.fill_buf() {
        Ok([]) => return Ok(None),
        Ok(_) => {}
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            return Err(HttpError::Timeout);
        }
        Err(e) => return Err(HttpError::Io(e)),
    }

    let request_line = read_line(reader, "request line")?;
    let (method, target) = parse_request_line(&request_line)?;
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// Splits `METHOD TARGET HTTP/1.x` into its method and target tokens.
fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("request line without target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("request line without version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    Ok((method, target))
}

/// Byte offset just past the head-terminating blank line, if the buffer
/// already holds one (accepts CRLF and bare-LF line endings).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    for (i, b) in buf.iter().enumerate() {
        if *b != b'\n' {
            continue;
        }
        let rest = buf.get(i + 1..).unwrap_or(&[]);
        if rest.starts_with(b"\r\n") {
            return Some(i + 3);
        }
        if rest.starts_with(b"\n") {
            return Some(i + 2);
        }
    }
    None
}

/// Incrementally parses one request out of a byte buffer — the
/// non-blocking event loop's entry point. The readiness loop appends
/// whatever the socket had ready and asks whether a complete message
/// has arrived yet.
///
/// Returns `Ok(None)` while the buffer holds only a request prefix,
/// and `Ok(Some((request, consumed)))` once a full message is present,
/// where `consumed` is the byte count to drain from the buffer's front
/// (pipelined requests may follow it). Chunked request *bodies* are not
/// accepted on this path: no client of this service sends them, and
/// rejecting the framing keeps the parser single-pass.
///
/// # Errors
/// [`HttpError`] for protocol violations and oversized messages.
pub fn parse_request_bytes(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge("request head"));
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD {
        return Err(HttpError::TooLarge("request head"));
    }
    let head = buf.get(..head_end).unwrap_or(buf);
    let mut reader = io::BufReader::new(head);
    let request_line = read_line(&mut reader, "request line")?;
    let (method, target) = parse_request_line(&request_line)?;
    let headers = read_headers(&mut reader)?;

    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"))
    {
        return Err(HttpError::Malformed("chunked request body"));
    }
    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("unparsable content-length"))?,
    };
    if length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }
    let Some(body) = buf.get(head_end..head_end.saturating_add(length)) else {
        // Head complete, body still in flight.
        return Ok(None);
    };
    Ok(Some((
        Request {
            method,
            target,
            headers,
            body: body.to_vec(),
        },
        head_end.saturating_add(length),
    )))
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional `(name, value)` headers (e.g. `ETag`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A binary (`application/octet-stream`) response.
    pub fn bytes(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: "application/octet-stream",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Attaches an extra header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }
}

/// The standard reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `response` with `Content-Length` framing and the given
/// connection disposition.
///
/// # Errors
/// Propagates transport write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    // One write for head + body: split writes interact badly with Nagle's
    // algorithm + delayed ACK (~40 ms stalls on loopback keep-alive).
    let mut message = head.into_bytes();
    message.extend_from_slice(&response.body);
    writer.write_all(&message)?;
    writer.flush()
}

/// Writes the head of a `Transfer-Encoding: chunked` response; the body
/// follows as [`write_chunk`] calls closed by [`finish_chunked`].
///
/// # Errors
/// Propagates transport write failures.
pub fn write_chunked_head<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\n",
        status,
        reason(status),
        content_type,
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    writer.write_all(head.as_bytes())?;
    writer.flush()
}

/// Writes one data chunk and flushes, so a long-poll subscriber sees the
/// event immediately.
///
/// # Errors
/// Propagates transport write failures.
pub fn write_chunk<W: Write>(writer: &mut W, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        // An empty data chunk would read as the stream terminator.
        return Ok(());
    }
    let mut message = format!("{:x}\r\n", data.len()).into_bytes();
    message.extend_from_slice(data);
    message.extend_from_slice(b"\r\n");
    writer.write_all(&message)?;
    writer.flush()
}

/// Terminates a chunked response (zero-size chunk, empty trailer).
///
/// # Errors
/// Propagates transport write failures.
pub fn finish_chunked<W: Write>(writer: &mut W) -> io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// A response as seen by the client side: status, headers, body.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a response's status line and headers, leaving the body (if
/// any) unread — the entry point for incremental chunked consumption.
///
/// # Errors
/// [`HttpError`] for protocol violations, oversized messages, and
/// transport failures.
pub fn read_response_head<R: BufRead>(reader: &mut R) -> Result<(u16, Headers), HttpError> {
    let status_line = read_line(reader, "status line")?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::Malformed("unparsable status code"))?;
    let headers = read_headers(reader)?;
    Ok((status, headers))
}

/// Reads one response off a client connection (chunked bodies are
/// drained whole; use [`read_response_head`] + [`read_chunk`] to stream).
///
/// # Errors
/// [`HttpError`] for protocol violations, oversized messages, and
/// transport failures.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<ClientResponse, HttpError> {
    let status_line = read_line(reader, "status line")?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::Malformed("unparsable status code"))?;
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = b"POST /v1/jobs?format=json&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse_bytes(raw).expect("valid").expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/jobs");
        assert_eq!(req.query(), Some("format=json&x=1"));
        assert!(req.query_has("format", "json"));
        assert!(!req.query_has("format", "bin"));
        assert_eq!(req.header("HOST"), Some("h"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_yields_none_and_garbage_errors() {
        assert!(parse_bytes(b"").expect("eof is clean").is_none());
        assert!(parse_bytes(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_bytes(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse_bytes(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n").is_err());
        // Declared body longer than the stream.
        assert!(parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").is_err());
    }

    #[test]
    fn size_caps_are_enforced() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
        assert!(matches!(
            parse_bytes(long_target.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
        let huge_body = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            parse_bytes(huge_body.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = parse_bytes(raw).expect("valid").expect("present");
        assert!(!req.keep_alive());
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let resp = Response::json(200, "{\"ok\":true}".to_string())
            .with_header("etag", "\"abc\"".to_string());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).expect("write to vec");
        let back = read_response(&mut BufReader::new(wire.as_slice())).expect("parse own output");
        assert_eq!(back.status, 200);
        assert_eq!(back.header("ETag"), Some("\"abc\""));
        assert_eq!(back.header("connection"), Some("keep-alive"));
        assert_eq!(back.body, b"{\"ok\":true}");
    }

    #[test]
    fn lf_only_lines_are_tolerated() {
        let raw = b"GET /healthz HTTP/1.1\nHost: h\n\n";
        let req = parse_bytes(raw).expect("valid").expect("present");
        assert_eq!(req.path(), "/healthz");
    }

    #[test]
    fn query_get_returns_the_first_matching_component() {
        let raw = b"GET /v1/profiles/x/delta?since=3&timeout_ms=50 HTTP/1.1\r\n\r\n";
        let req = parse_bytes(raw).expect("valid").expect("present");
        assert_eq!(req.query_get("since"), Some("3"));
        assert_eq!(req.query_get("timeout_ms"), Some("50"));
        assert_eq!(req.query_get("missing"), None);
    }

    #[test]
    fn chunked_stream_roundtrips_incrementally_and_whole() {
        let mut wire = Vec::new();
        write_chunked_head(
            &mut wire,
            200,
            "application/octet-stream",
            &[("x-reaper-epoch", "7".to_string())],
            true,
        )
        .expect("head to vec");
        write_chunk(&mut wire, b"first").expect("chunk");
        write_chunk(&mut wire, b"").expect("empty chunk is a no-op");
        write_chunk(&mut wire, b"second event").expect("chunk");
        finish_chunked(&mut wire).expect("terminator");

        // Incremental reader sees each event separately.
        let mut reader = BufReader::new(wire.as_slice());
        let (status, headers) = read_response_head(&mut reader).expect("head");
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v == "chunked"));
        assert!(headers.iter().any(|(n, v)| n == "x-reaper-epoch" && v == "7"));
        assert_eq!(read_chunk(&mut reader).expect("chunk"), Some(b"first".to_vec()));
        assert_eq!(
            read_chunk(&mut reader).expect("chunk"),
            Some(b"second event".to_vec())
        );
        assert_eq!(read_chunk(&mut reader).expect("terminator"), None);

        // Whole-body reader concatenates the stream.
        let back = read_response(&mut BufReader::new(wire.as_slice())).expect("parse");
        assert_eq!(back.body, b"firstsecond event");
    }

    #[test]
    fn incremental_parser_handles_prefixes_wholes_and_pipelines() {
        let raw: &[u8] =
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first message is "not yet".
        let first_len = raw.len() - b"GET /healthz HTTP/1.1\r\n\r\n".len();
        for cut in 0..first_len {
            let step = parse_request_bytes(&raw[..cut]).expect("prefix is clean");
            assert!(step.is_none(), "cut={cut} parsed early");
        }
        // The full buffer yields the first request and its exact length,
        // leaving the pipelined second request unconsumed.
        let (req, consumed) = parse_request_bytes(raw)
            .expect("valid")
            .expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");
        assert_eq!(consumed, first_len);
        let (next, consumed2) = parse_request_bytes(&raw[consumed..])
            .expect("valid")
            .expect("complete");
        assert_eq!(next.method, "GET");
        assert_eq!(next.path(), "/healthz");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incremental_parser_rejects_bad_framing() {
        assert!(parse_request_bytes(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_request_bytes(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse_request_bytes(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        // Chunked request bodies are refused on the event-loop path.
        assert!(parse_request_bytes(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
        )
        .is_err());
        // An endless head trips the cap instead of buffering forever.
        let torrent = vec![b'x'; MAX_HEAD + 1];
        assert!(matches!(
            parse_request_bytes(&torrent),
            Err(HttpError::TooLarge(_))
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            parse_request_bytes(huge.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn incremental_parser_tolerates_lf_only_terminators() {
        let raw = b"GET /metrics HTTP/1.1\nHost: h\n\n";
        let (req, consumed) = parse_request_bytes(raw)
            .expect("valid")
            .expect("complete");
        assert_eq!(req.path(), "/metrics");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn malformed_chunk_framing_is_rejected() {
        // Unparsable size line.
        let mut r = BufReader::new(&b"zz\r\ndata\r\n"[..]);
        assert!(read_chunk(&mut r).is_err());
        // Data not CRLF-terminated where the separator should be.
        let mut r = BufReader::new(&b"4\r\ndataX\r\n"[..]);
        assert!(read_chunk(&mut r).is_err());
        // Truncated data.
        let mut r = BufReader::new(&b"10\r\nshort"[..]);
        assert!(read_chunk(&mut r).is_err());
    }
}
