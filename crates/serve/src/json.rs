//! Minimal JSON: a hand-rolled parser and encoder covering exactly the
//! service's wire needs, with no dependencies.
//!
//! Integers are kept exact ([`Value::Int`], `i128`) rather than funneled
//! through `f64`, because job seeds and cell addresses are full-width
//! `u64` values that binary64 cannot represent above 2⁵³.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` so encoding order is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a `u32`, if it is an integer in range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Int(i) => u32::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` (integers widen; may round above 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Encodes this value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Num(n) => {
                if n.is_finite() {
                    // f64 Display is shortest-roundtrip; ensure a marker
                    // so integral floats don't re-parse as Int.
                    let s = n.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => encode_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                let mut first = true;
                for item in items {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                let mut first = true;
                for (k, v) in map {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object value from `(key, value)` pairs (later keys win).
pub fn obj<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
    Value::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// String payload helper.
pub fn str(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Unsigned-integer payload helper.
pub fn uint(v: u64) -> Value {
    Value::Int(i128::from(v))
}

/// Float payload helper.
pub fn num(v: f64) -> Value {
    Value::Num(v)
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Returns the first syntax error with its byte offset; never panics on
/// any input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting depth cap: deeper documents are rejected rather than risking
/// stack exhaustion on hostile input.
const MAX_DEPTH: u32 = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        let end = self.pos.saturating_add(lit.len());
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = self
                    .bytes
                    .get(start..self.pos)
                    .ok_or_else(|| self.err("string run out of bounds"))?;
                let text = core::str::from_utf8(run)
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(text);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if !self.eat_literal("\\u") {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let run = self
            .bytes
            .get(start..self.pos)
            .ok_or_else(|| self.err("number run out of bounds"))?;
        let text =
            core::str::from_utf8(run).map_err(|_| self.err("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_service_request_shape() {
        let v = parse(
            r#"{"vendor":"B","seed":18446744073709551615,"target_interval_ms":1024,
                "reach_delta_ms":250.5,"patterns":"standard","big":[1,2,3],"ok":true}"#,
        )
        .expect("valid json");
        assert_eq!(v.get("vendor").and_then(Value::as_str), Some("B"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(
            v.get("target_interval_ms").and_then(Value::as_f64),
            Some(1024.0)
        );
        assert_eq!(v.get("reach_delta_ms").and_then(Value::as_f64), Some(250.5));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_seeds_above_2_53_survive_roundtrip() {
        let seed = (1u64 << 53) + 1;
        let text = obj([("seed", uint(seed))]).encode();
        let back = parse(&text).expect("roundtrip");
        assert_eq!(back.get("seed").and_then(Value::as_u64), Some(seed));
    }

    #[test]
    fn encode_escapes_and_orders_deterministically() {
        let v = obj([
            ("b", str("line\n\"quote\"")),
            ("a", uint(1)),
            ("c", Value::Bool(false)),
        ]);
        assert_eq!(
            v.encode(),
            r#"{"a":1,"b":"line\n\"quote\"","c":false}"#
        );
        assert_eq!(num(1.0).encode(), "1.0");
        assert_eq!(num(f64::NAN).encode(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let cases = ["", "plain", "tab\there", "uni → ★", "q\"q", "back\\slash"];
        for s in cases {
            let text = Value::Str(s.to_string()).encode();
            assert_eq!(parse(&text).expect("valid"), Value::Str(s.to_string()), "{s}");
        }
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).expect("escapes"),
            Value::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
            "{\"a\":1}x", "\"\\u12\"", "\"\\ud800\"", "nul", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
        // Depth bomb: rejected, not a stack overflow.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(parse("42").expect("int"), Value::Int(42));
        assert_eq!(parse("-7").expect("int"), Value::Int(-7));
        assert_eq!(parse("4.5").expect("float"), Value::Num(4.5));
        assert_eq!(parse("1e3").expect("float"), Value::Num(1000.0));
        assert_eq!(parse("2").expect("int").as_u32(), Some(2));
        assert_eq!(parse("-2").expect("int").as_u64(), None);
    }
}
