//! `reaper-serve`: a zero-dependency profiling service.
//!
//! The library crates compute retention-failure profiles as pure
//! functions of a request; this crate puts that behind a network
//! boundary without giving up any of it:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 subset over `std::net` (request
//!   parsing, `Content-Length` framing, keep-alive),
//! * [`json`] — a dependency-free JSON parser/encoder that keeps `u64`
//!   seeds exact,
//! * [`api`] — JSON bodies ↔ [`reaper_core::ProfilingRequest`] mapping,
//! * [`cache`] — the content-addressed result cache (job ID → encoded
//!   profile bytes) with logical-tick LRU eviction under a byte budget,
//! * [`metrics`] — counters, latency histograms, and a Prometheus text
//!   renderer,
//! * [`server`] — accept loop, bounded job queue, and a worker pool
//!   built on [`reaper_exec::pool`],
//! * [`client`] — a std-only client used by the smoke test and the load
//!   generator.
//!
//! ## Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/jobs` | Submit a job; identical requests dedup to one ID |
//! | `GET /v1/jobs/{id}` | Job status + result summary |
//! | `GET /v1/profiles/{id}` | Encoded profile (`?format=json` decodes) |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | Liveness |
//!
//! ## Determinism contract
//!
//! Job IDs are the splitmix64-chained hash of the request's canonical
//! bytes ([`reaper_core::ProfilingRequest::job_id`]); execution is
//! [`reaper_core::ProfilingRequest::execute`], the same code path as a
//! direct library call. Served profile bytes are therefore bit-identical
//! to `FailureProfile::to_bytes` of an in-process run, at any worker or
//! thread count. Wall-clock reads exist only in [`metrics`] (latency
//! histograms) under a scoped lint exemption; they feed no result bytes.

// Tests assert exact float equality on purpose (determinism contract);
// clippy.toml has no in-tests knob for float_cmp.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use api::JobSummary;
pub use cache::ResultCache;
pub use client::{Client, ClientError, SubmitReceipt};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use server::{Server, ServerConfig};
