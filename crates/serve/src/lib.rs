//! `reaper-serve`: a zero-dependency profiling service.
//!
//! The library crates compute retention-failure profiles as pure
//! functions of a request; this crate puts that behind a network
//! boundary without giving up any of it:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 subset over `std::net` (request
//!   parsing, `Content-Length` framing, keep-alive),
//! * [`json`] — a dependency-free JSON parser/encoder that keeps `u64`
//!   seeds exact,
//! * [`api`] — JSON bodies ↔ [`reaper_core::ProfilingRequest`] mapping,
//! * [`cache`] — the original content-addressed result cache (job ID →
//!   encoded profile bytes) with logical-tick LRU eviction,
//! * [`store`] — its successor: one append-then-compact epoch log per
//!   profile with `RPD1` delta records, content-addressed chunk dedup,
//!   and metadata that survives eviction (the ETag source),
//! * [`metrics`] — counters, latency histograms, and a Prometheus text
//!   renderer,
//! * [`server`] — accept loop, bounded job queue, and a worker pool
//!   built on [`reaper_exec::pool`],
//! * [`client`] — a std-only client used by the smoke test and the load
//!   generator.
//!
//! ## Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/jobs` | Submit a job; identical requests dedup to one ID |
//! | `GET /v1/jobs/{id}` | Job status + result summary |
//! | `GET /v1/profiles/{id}` | Encoded head profile (`?format=json` decodes); strong ETag + `If-None-Match` → 304 |
//! | `POST /v1/profiles/{id}/epochs` | Push a re-profiling snapshot; appends an `RPD1` delta, advances the head |
//! | `GET /v1/profiles/{id}/delta?since=N` | Minimal update from epoch N: delta chain, full fallback, or 304 |
//! | `GET /v1/profiles/{id}/watch` | Chunked long-poll subscription; one wire message per chunk |
//! | `GET /v1/sync/manifest` | Per-profile head coordinates + job records, for fleet replication |
//! | `GET /metrics` | Prometheus text exposition (plus `reaper_fleet_*` identity series) |
//! | `GET /healthz` | Liveness + fleet identity (role, shard id, store epoch) |
//!
//! ## Determinism contract
//!
//! Job IDs are the splitmix64-chained hash of the request's canonical
//! bytes ([`reaper_core::ProfilingRequest::job_id`]); execution is
//! [`reaper_core::ProfilingRequest::execute`], the same code path as a
//! direct library call. Served profile bytes are therefore bit-identical
//! to `FailureProfile::to_bytes` of an in-process run, at any worker or
//! thread count. Wall-clock reads exist only in [`metrics`] (latency
//! histograms) under a scoped lint exemption; they feed no result bytes.

// Tests assert exact float equality on purpose (determinism contract);
// clippy.toml has no in-tests knob for float_cmp.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod api;
pub mod cache;
pub mod client;
#[cfg(unix)]
pub mod eventloop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod store;

pub use api::{JobRequest, JobSummary};
pub use cache::ResultCache;
pub use client::{
    Client, ClientError, ConnectionPool, DeltaFetch, ProfileFetch, ProfileUpdate, PushReceipt,
    SubmitReceipt,
};
pub use metrics::{
    FleetIdentity, FleetMetrics, MetricsSnapshot, PortfolioMetrics, ServiceMetrics, StoreGauges,
};
pub use server::{ConnectionModel, Server, ServerConfig, SyncHandle};
pub use store::{ProfileStore, StoreConfig, SyncApply};
