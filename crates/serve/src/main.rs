//! The `reaper-serve` binary: bind the profiling service and run until
//! stdin closes (or receives `quit`), then drain and exit.
//!
//! ```text
//! reaper-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-mb N]
//! ```

// CLI surface: printing and argument-error exits are the point here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::io::BufRead;
use std::process::ExitCode;

use reaper_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: reaper-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-mb N]\n\
         \n\
         Runs the REAPER profiling service until stdin closes or reads `quit`.\n\
         Defaults: --addr 127.0.0.1:7272, --workers 0 (auto), --queue 64, --cache-mb 16"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7272".to_string(),
        ..ServerConfig::default()
    };

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => config.workers = n,
                Err(_) => return usage(),
            },
            "--queue" => match value.parse::<usize>() {
                Ok(n) if n > 0 => config.queue_capacity = n,
                _ => return usage(),
            },
            "--cache-mb" => match value.parse::<usize>() {
                Ok(n) => config.cache_budget_bytes = n * 1024 * 1024,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reaper-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("reaper-serve listening on http://{}", server.local_addr());
    println!("endpoints: POST /v1/jobs, GET /v1/jobs/{{id}}, GET /v1/profiles/{{id}}, /metrics, /healthz");
    println!("type `quit` (or close stdin) to drain and exit");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    println!("reaper-serve: draining queue and shutting down");
    server.shutdown();
    ExitCode::SUCCESS
}
