//! Service observability: lock-free counters, power-of-two latency
//! histograms, and a Prometheus text-format renderer.
//!
//! This is the *only* module in the workspace's library code that reads
//! wall-clock time, and only through [`now`] / [`elapsed_micros`]. The
//! determinism contract is untouched: profile bytes are a pure function
//! of the request; clocks feed nothing but these metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An opaque timing anchor for latency measurement.
///
/// Returns the current monotonic instant.
pub(crate) fn now() -> Instant {
    // lint: allow(wall-clock) service latency metrics only; profile bytes stay pure functions of the request
    Instant::now()
}

/// Whole microseconds since `start`, saturating at `u64::MAX`.
pub(crate) fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Number of histogram buckets: power-of-two boundaries 1 µs … 2^26 µs
/// (~67 s), plus a final +Inf bucket.
const BUCKETS: usize = 28;

/// A fixed-bucket latency histogram with power-of-two µs boundaries.
///
/// Bucket `i < 27` counts observations `≤ 2^i` µs; the last bucket is
/// +Inf. Cumulative counts (Prometheus `le` semantics) are computed at
/// render time.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        // 0..=1 µs → bucket 0; 2^26 µs and above → the +Inf bucket.
        let clamped = micros.max(1);
        let bits = u64::BITS - clamped.leading_zeros() - 1;
        let idx = if clamped.is_power_of_two() { bits } else { bits + 1 };
        reaper_exec::num::idx(idx).min(BUCKETS - 1)
    }

    /// Records one observation of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        if let Some(bucket) = self.counts.get(Self::bucket_index(micros)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Renders this histogram in Prometheus exposition format.
    fn render(&self, name: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            if i == BUCKETS - 1 {
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            } else {
                let le = 1u64 << i;
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
        }
        let sum = self.sum_micros.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// All service counters and histograms, shared across connection and
/// worker threads.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Jobs accepted by `POST /v1/jobs` (deduplicated submissions count
    /// toward `jobs_deduped`, not here).
    pub jobs_submitted: AtomicU64,
    /// Jobs whose execution finished successfully.
    pub jobs_completed: AtomicU64,
    /// Submissions answered from an existing job record without a new
    /// execution.
    pub jobs_deduped: AtomicU64,
    /// Jobs whose execution failed (validation race or worker panic).
    pub jobs_failed: AtomicU64,
    /// Profile reads served from the result cache.
    pub cache_hits: AtomicU64,
    /// Profile reads that found the job done but its bytes evicted.
    pub cache_misses: AtomicU64,
    /// Re-profiling snapshots accepted by `POST /v1/profiles/{id}/epochs`.
    pub delta_pushes: AtomicU64,
    /// `?since=` reads answered with an `RPD1` delta chain.
    pub delta_chains: AtomicU64,
    /// `?since=` reads that fell back to the full snapshot (compacted).
    pub delta_full_fallbacks: AtomicU64,
    /// Conditional reads short-circuited to `304 Not Modified`.
    pub not_modified: AtomicU64,
    /// Events pushed to watch subscribers.
    pub watch_events: AtomicU64,
    /// Time from submission to a worker picking the job up.
    pub queue_wait_micros: LatencyHistogram,
    /// Worker execution time per job.
    pub exec_micros: LatencyHistogram,
}

/// Point-in-time gauges owned by the profile store, passed into
/// [`ServiceMetrics::render`] by the server.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreGauges {
    /// Epoch logs (resident or metadata-only).
    pub profiles: usize,
    /// Logs whose head snapshot bytes are resident.
    pub resident: usize,
    /// Bytes pinned by snapshots and delta chunks.
    pub used_bytes: usize,
    /// Cumulative budget-pressure evictions.
    pub evictions: u64,
    /// Distinct delta payload chunks.
    pub chunk_entries: usize,
    /// Bytes held by delta payload chunks.
    pub chunk_bytes: usize,
    /// Cumulative cross-profile chunk dedup hits.
    pub chunk_dedup_hits: u64,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, for test assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_deduped: self.jobs_deduped.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            delta_pushes: self.delta_pushes.load(Ordering::Relaxed),
            delta_chains: self.delta_chains.load(Ordering::Relaxed),
            delta_full_fallbacks: self.delta_full_fallbacks.load(Ordering::Relaxed),
            not_modified: self.not_modified.load(Ordering::Relaxed),
            watch_events: self.watch_events.load(Ordering::Relaxed),
        }
    }

    /// Renders the full `/metrics` payload in Prometheus text format.
    /// Gauges the registry does not own (queue depth, store occupancy)
    /// are passed in by the server.
    pub fn render(&self, queue_depth: usize, store: &StoreGauges) -> String {
        let mut out = String::with_capacity(2048);
        let counters: [(&str, &AtomicU64); 11] = [
            ("reaper_jobs_submitted_total", &self.jobs_submitted),
            ("reaper_jobs_completed_total", &self.jobs_completed),
            ("reaper_jobs_deduped_total", &self.jobs_deduped),
            ("reaper_jobs_failed_total", &self.jobs_failed),
            ("reaper_cache_hits_total", &self.cache_hits),
            ("reaper_cache_misses_total", &self.cache_misses),
            ("reaper_delta_pushes_total", &self.delta_pushes),
            ("reaper_delta_chains_total", &self.delta_chains),
            ("reaper_delta_full_fallbacks_total", &self.delta_full_fallbacks),
            ("reaper_not_modified_total", &self.not_modified),
            ("reaper_watch_events_total", &self.watch_events),
        ];
        for (name, counter) in counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", counter.load(Ordering::Relaxed)));
        }
        for (name, value) in [
            ("reaper_cache_evictions_total", store.evictions),
            ("reaper_store_chunk_dedup_hits_total", store.chunk_dedup_hits),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in [
            ("reaper_queue_depth", queue_depth),
            ("reaper_cache_entries", store.profiles),
            ("reaper_cache_used_bytes", store.used_bytes),
            ("reaper_store_resident_profiles", store.resident),
            ("reaper_store_chunk_entries", store.chunk_entries),
            ("reaper_store_chunk_bytes", store.chunk_bytes),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {value}\n"));
        }
        self.queue_wait_micros
            .render("reaper_queue_wait_microseconds", &mut out);
        self.exec_micros
            .render("reaper_exec_microseconds", &mut out);
        out
    }
}

/// Number of portfolio strategy families
/// ([`reaper_portfolio::Strategy::ALL`]).
const STRATEGIES: usize = reaper_portfolio::Strategy::ALL.len();

/// Per-strategy portfolio-race counters, labelled by strategy family.
///
/// Label order in the rendered exposition is the fixed
/// [`reaper_portfolio::Strategy::ALL`] code order — never a map
/// iteration — so `/metrics` output is byte-deterministic (D1).
#[derive(Default)]
pub struct PortfolioMetrics {
    /// Lanes launched into a race, per strategy.
    races: [AtomicU64; STRATEGIES],
    /// Lanes cancelled as provable losers, per strategy.
    cancelled: [AtomicU64; STRATEGIES],
    /// Races won, per strategy.
    winner: [AtomicU64; STRATEGIES],
}

impl PortfolioMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed index of `strategy` within [`reaper_portfolio::Strategy::ALL`]
    /// (exhaustive match, so a new strategy family fails to compile here
    /// instead of silently miscounting).
    fn slot(strategy: reaper_portfolio::Strategy) -> usize {
        use reaper_portfolio::Strategy;
        match strategy {
            Strategy::BruteForce => 0,
            Strategy::DeltaRefw => 1,
            Strategy::DeltaTemp => 2,
            Strategy::Combined => 3,
        }
    }

    /// Counts one completed race from its outcome: every lane raced,
    /// every cancelled lane, and the winner.
    pub fn note_race(&self, race: &reaper_portfolio::RaceOutcome) {
        for lane in &race.lanes {
            let slot = Self::slot(lane.spec.strategy());
            if let Some(counter) = self.races.get(slot) {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            if lane.status == reaper_portfolio::LaneStatus::Cancelled {
                if let Some(counter) = self.cancelled.get(slot) {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(counter) = self.winner.get(Self::slot(race.winner_strategy)) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total races won across all strategies (== races completed).
    pub fn races_won(&self) -> u64 {
        self.winner.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Renders the `reaper_portfolio_*` series in deterministic label
    /// order.
    pub fn render(&self, out: &mut String) {
        let families: [(&str, &[AtomicU64; STRATEGIES]); 3] = [
            ("reaper_portfolio_races_total", &self.races),
            ("reaper_portfolio_cancelled_total", &self.cancelled),
            ("reaper_portfolio_winner_total", &self.winner),
        ];
        for (name, counters) in families {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (strategy, counter) in reaper_portfolio::Strategy::ALL.iter().zip(counters) {
                out.push_str(&format!(
                    "{name}{{strategy=\"{}\"}} {}\n",
                    strategy.name(),
                    counter.load(Ordering::Relaxed)
                ));
            }
        }
    }
}

/// Where a process sits in the fleet topology, rendered into
/// `/healthz` and `/metrics` so operators (and the conformance tests)
/// can tell shards, routers, and standalone servers apart.
#[derive(Debug, Clone)]
pub struct FleetIdentity {
    /// `"standalone"`, `"shard"`, or `"router"`.
    pub role: &'static str,
    /// Shard index within the fleet; `None` for standalone servers.
    pub shard_id: Option<u64>,
}

impl FleetIdentity {
    /// The identity of a server not enrolled in any fleet.
    pub fn standalone() -> Self {
        Self {
            role: "standalone",
            shard_id: None,
        }
    }
}

/// Fleet-plane counters: proxying, replication, and failover activity.
/// Shared like [`ServiceMetrics`]; rendered by [`render_fleet`].
#[derive(Default)]
pub struct FleetMetrics {
    /// Requests this process forwarded to another fleet member.
    pub proxied_requests: AtomicU64,
    /// Replication pull rounds served or performed by this process.
    pub replication_pulls: AtomicU64,
    /// Reads answered by a non-primary replica after the primary failed.
    pub failovers: AtomicU64,
}

impl FleetMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Appends the `reaper_fleet_*` series to a `/metrics` payload. Label
/// order inside `reaper_fleet_info` is a fixed code-order sequence
/// (`role`, then `shard_id`) — D1-clean by construction.
pub fn render_fleet(
    identity: &FleetIdentity,
    store_epoch: u64,
    fleet: &FleetMetrics,
    out: &mut String,
) {
    out.push_str("# TYPE reaper_fleet_info gauge\n");
    match identity.shard_id {
        Some(id) => out.push_str(&format!(
            "reaper_fleet_info{{role=\"{}\",shard_id=\"{id}\"}} 1\n",
            identity.role
        )),
        None => out.push_str(&format!(
            "reaper_fleet_info{{role=\"{}\"}} 1\n",
            identity.role
        )),
    }
    out.push_str("# TYPE reaper_fleet_store_epoch gauge\n");
    out.push_str(&format!("reaper_fleet_store_epoch {store_epoch}\n"));
    let counters: [(&str, &AtomicU64); 3] = [
        (
            "reaper_fleet_proxied_requests_total",
            &fleet.proxied_requests,
        ),
        (
            "reaper_fleet_replication_pulls_total",
            &fleet.replication_pulls,
        ),
        ("reaper_fleet_failovers_total", &fleet.failovers),
    ];
    for (name, counter) in counters {
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {}\n", counter.load(Ordering::Relaxed)));
    }
}

/// A plain-old-data copy of the counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServiceMetrics::jobs_submitted`].
    pub jobs_submitted: u64,
    /// See [`ServiceMetrics::jobs_completed`].
    pub jobs_completed: u64,
    /// See [`ServiceMetrics::jobs_deduped`].
    pub jobs_deduped: u64,
    /// See [`ServiceMetrics::jobs_failed`].
    pub jobs_failed: u64,
    /// See [`ServiceMetrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServiceMetrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`ServiceMetrics::delta_pushes`].
    pub delta_pushes: u64,
    /// See [`ServiceMetrics::delta_chains`].
    pub delta_chains: u64,
    /// See [`ServiceMetrics::delta_full_fallbacks`].
    pub delta_full_fallbacks: u64,
    /// See [`ServiceMetrics::not_modified`].
    pub not_modified: u64,
    /// See [`ServiceMetrics::watch_events`].
    pub watch_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(5), 3);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_renders_cumulatively() {
        let h = LatencyHistogram::new();
        for micros in [1, 2, 2, 100, 1_000_000_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 5);
        let mut out = String::new();
        h.render("t", &mut out);
        assert!(out.contains("t_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("t_bucket{le=\"2\"} 3\n"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("t_count 5\n"));
        assert!(out.contains(&format!("t_sum {}\n", 1 + 2 + 2 + 100 + 1_000_000_000)));
    }

    #[test]
    fn render_exposes_every_required_series() {
        let m = ServiceMetrics::new();
        ServiceMetrics::inc(&m.jobs_submitted);
        ServiceMetrics::inc(&m.cache_hits);
        ServiceMetrics::inc(&m.delta_pushes);
        let gauges = StoreGauges {
            profiles: 2,
            resident: 1,
            used_bytes: 4096,
            evictions: 1,
            chunk_entries: 5,
            chunk_bytes: 640,
            chunk_dedup_hits: 4,
        };
        let text = m.render(3, &gauges);
        for series in [
            "reaper_jobs_submitted_total 1",
            "reaper_jobs_completed_total 0",
            "reaper_jobs_deduped_total 0",
            "reaper_jobs_failed_total 0",
            "reaper_cache_hits_total 1",
            "reaper_cache_misses_total 0",
            "reaper_delta_pushes_total 1",
            "reaper_delta_chains_total 0",
            "reaper_delta_full_fallbacks_total 0",
            "reaper_not_modified_total 0",
            "reaper_watch_events_total 0",
            "reaper_cache_evictions_total 1",
            "reaper_store_chunk_dedup_hits_total 4",
            "reaper_queue_depth 3",
            "reaper_cache_entries 2",
            "reaper_cache_used_bytes 4096",
            "reaper_store_resident_profiles 1",
            "reaper_store_chunk_entries 5",
            "reaper_store_chunk_bytes 640",
            "reaper_queue_wait_microseconds_count 0",
            "reaper_exec_microseconds_count 0",
        ] {
            assert!(text.contains(series), "missing series: {series}\n{text}");
        }
        let snap = m.snapshot();
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.jobs_completed, 0);
        assert_eq!(snap.delta_pushes, 1);
    }

    #[test]
    fn fleet_series_render_in_deterministic_label_order() {
        let fleet = FleetMetrics::new();
        ServiceMetrics::inc(&fleet.proxied_requests);
        ServiceMetrics::inc(&fleet.proxied_requests);
        ServiceMetrics::inc(&fleet.failovers);
        let shard = FleetIdentity {
            role: "shard",
            shard_id: Some(3),
        };
        let mut out = String::new();
        render_fleet(&shard, 17, &fleet, &mut out);
        assert!(out.contains("reaper_fleet_info{role=\"shard\",shard_id=\"3\"} 1\n"));
        assert!(out.contains("reaper_fleet_store_epoch 17\n"));
        assert!(out.contains("reaper_fleet_proxied_requests_total 2\n"));
        assert!(out.contains("reaper_fleet_replication_pulls_total 0\n"));
        assert!(out.contains("reaper_fleet_failovers_total 1\n"));

        let mut solo = String::new();
        render_fleet(&FleetIdentity::standalone(), 0, &fleet, &mut solo);
        assert!(solo.contains("reaper_fleet_info{role=\"standalone\"} 1\n"));

        // Rendering twice yields byte-identical output (label order is a
        // code-order constant, not a map iteration).
        let mut again = String::new();
        render_fleet(&shard, 17, &fleet, &mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn portfolio_series_render_in_canonical_strategy_order() {
        let m = PortfolioMetrics::new();
        let (race, _) = reaper_portfolio::PortfolioRequest::example(3)
            .execute()
            .expect("example races");
        m.note_race(&race);
        assert_eq!(m.races_won(), 1);

        let mut out = String::new();
        m.render(&mut out);
        for family in [
            "reaper_portfolio_races_total",
            "reaper_portfolio_cancelled_total",
            "reaper_portfolio_winner_total",
        ] {
            // One line per strategy, in Strategy::ALL order — never a
            // map iteration order.
            let positions: Vec<usize> = reaper_portfolio::Strategy::ALL
                .iter()
                .map(|s| {
                    out.find(&format!("{family}{{strategy=\"{}\"}}", s.name()))
                        .unwrap_or_else(|| panic!("missing {family} for {}", s.name()))
                })
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "{family} labels out of canonical order\n{out}"
            );
        }
        // The default portfolio launches 1 brute-force + 2 Δrefw + 2 ΔT
        // + 2 combined lanes per race.
        assert!(out.contains("reaper_portfolio_races_total{strategy=\"brute_force\"} 1\n"));
        assert!(out.contains("reaper_portfolio_races_total{strategy=\"delta_refw\"} 2\n"));
        assert!(out.contains("reaper_portfolio_races_total{strategy=\"delta_t\"} 2\n"));
        assert!(out.contains("reaper_portfolio_races_total{strategy=\"combined\"} 2\n"));

        // Rendering twice yields byte-identical output.
        let mut again = String::new();
        m.render(&mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn elapsed_micros_is_monotone() {
        let start = now();
        let a = elapsed_micros(start);
        let b = elapsed_micros(start);
        assert!(b >= a);
    }
}
