//! The profiling service: accept loop, job queue, worker pool, and the
//! HTTP endpoint handlers.
//!
//! ## Determinism under concurrent clients
//!
//! Every job is a pure function of its [`ProfilingRequest`], and the job
//! ID is the hash of the request's canonical bytes — so scheduling
//! (which worker runs a job, in what order, at what thread count) can
//! only affect *when* a result appears, never *what* it is. Two clients
//! racing to submit the same request collide on the same ID; the first
//! enqueues the execution, the second is answered from the existing
//! record ("dedup"), and both read back the same bytes.
//!
//! ## Lock ordering
//!
//! `jobs` before `store`, everywhere. Handlers take at most both; the
//! worker takes them in the same order when publishing a result. The
//! watch sequence lock (`watch_seq`) is leaf-only: it is never held
//! while acquiring `jobs` or `store`.
//!
//! ## Streaming profiles
//!
//! Completed jobs seed one epoch log each in the [`crate::store`]
//! module's [`ProfileStore`]. Re-profiling pushes
//! (`POST /v1/profiles/{id}/epochs`) append `RPD1` deltas and advance
//! the head; readers catch up with `GET /v1/profiles/{id}/delta?since=`
//! or subscribe via the chunked `GET /v1/profiles/{id}/watch` long-poll,
//! woken by a `Condvar` the publishers signal. ETags are
//! `"<content-hash>-<epoch>"`, so `If-None-Match` revalidation works
//! even after the bytes were evicted — a 304 costs no recomputation.

use std::collections::BTreeMap;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use reaper_core::{FailureProfile, ProfilingOutcome, ProfilingRequest};
use reaper_exec::pool::{BoundedQueue, PushError, WorkerPool};
use reaper_exec::sync::lock;
use reaper_portfolio::{PriorStore, RaceOutcome};
use reaper_retention::delta::{self, ProfileDelta};

use crate::api::{self, JobRequest, JobSummary};
use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::metrics::{
    self, FleetIdentity, FleetMetrics, MetricsSnapshot, PortfolioMetrics, ServiceMetrics,
    StoreGauges,
};
use crate::store::{
    AppendError, DeltaQuery, FullQuery, HeadInfo, InsertOutcome, ProfileStore, StoreConfig,
    SyncApply,
};

/// Socket read timeout for keep-alive connections; bounds how long a
/// connection thread can ignore the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// How the server multiplexes its sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionModel {
    /// The `poll(2)` readiness loop ([`crate::eventloop`]): one thread
    /// drives every connection, so the concurrency bound is file
    /// descriptors, not stacks. Unix only; other targets fall back to
    /// thread-per-connection.
    EventLoop {
        /// Most simultaneously registered sockets; further accepts wait
        /// in the listener backlog.
        max_connections: usize,
    },
    /// The original model: one blocking thread per connection.
    ThreadPerConnection {
        /// Connection-thread cap; accepts beyond it are shed with a
        /// `503` (previously unbounded, which is how a fleet-scale
        /// client crowd exhausts a shard's stacks).
        max_threads: usize,
    },
}

/// Default registered-socket cap for the event loop.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;
/// Default connection-thread cap for the blocking model.
pub const DEFAULT_MAX_CONN_THREADS: usize = 256;

impl Default for ConnectionModel {
    fn default() -> Self {
        #[cfg(unix)]
        {
            ConnectionModel::EventLoop {
                max_connections: DEFAULT_MAX_CONNECTIONS,
            }
        }
        #[cfg(not(unix))]
        {
            ConnectionModel::ThreadPerConnection {
                max_threads: DEFAULT_MAX_CONN_THREADS,
            }
        }
    }
}

/// Service configuration; `Default` gives an ephemeral-port localhost
/// server sized for tests.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads; 0 means [`reaper_exec::thread_count`].
    pub workers: usize,
    /// Job-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Profile-store byte budget (snapshots + delta chunks).
    pub cache_budget_bytes: usize,
    /// Compact an epoch log once its chain holds this many deltas.
    pub compact_max_deltas: usize,
    /// Compact an epoch log once its chain payload exceeds this.
    pub compact_max_chain_bytes: usize,
    /// Socket multiplexing model.
    pub connection_model: ConnectionModel,
    /// Fleet shard index; `None` runs as a standalone server. Shown in
    /// `/healthz` and the `reaper_fleet_info` metric.
    pub shard_id: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let store = StoreConfig::default();
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_budget_bytes: store.budget_bytes,
            compact_max_deltas: store.compact_max_deltas,
            compact_max_chain_bytes: store.compact_max_chain_bytes,
            connection_model: ConnectionModel::default(),
            shard_id: None,
        }
    }
}

/// Lifecycle of a job record.
#[derive(Debug, Clone)]
enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; summary retained even if the profile bytes get evicted.
    Done(JobSummary),
    /// Execution failed (validation race or worker panic), with a reason.
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One job record, kept for the server's lifetime (records are a few
/// hundred bytes; the byte-heavy profile lives in the evictable cache).
struct JobRecord {
    request: JobRequest,
    status: JobStatus,
}

/// A queued unit of work.
struct JobTicket {
    id: u64,
    request: JobRequest,
    enqueued_at: std::time::Instant,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<JobTicket>,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
    store: Mutex<ProfileStore>,
    metrics: ServiceMetrics,
    /// Per-strategy portfolio race counters.
    portfolio: PortfolioMetrics,
    /// Per-vendor strategy priors learned from completed portfolio
    /// races; workers snapshot the store before executing (priors only
    /// reorder lane launches — results stay pure functions of the
    /// request) and record the winner afterwards.
    priors: Mutex<PriorStore>,
    open_connections: AtomicUsize,
    /// Bumped on every publish (job completion or epoch push); watch
    /// handlers sleep on the condvar instead of busy-polling the store.
    watch_seq: Mutex<u64>,
    watch_cv: Condvar,
    /// Who this server is within a fleet (role + shard id).
    identity: FleetIdentity,
    /// Fleet-plane counters (replication pulls; the router owns the
    /// proxy/failover counters through [`crate::metrics::FleetMetrics`]).
    fleet: FleetMetrics,
}

impl Shared {
    /// Signals every watch subscriber that some profile advanced.
    fn notify_watchers(&self) {
        let mut seq = lock(&self.watch_seq);
        *seq = seq.wrapping_add(1);
        self.watch_cv.notify_all();
        drop(seq);
    }
}

/// A running profiling service; dropping it without calling
/// [`Server::shutdown`] leaks the listener thread for the process
/// lifetime, so tests should always shut down explicitly.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Server {
    /// Binds the listener, spawns the worker pool and accept loop, and
    /// returns once the service is reachable.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            reaper_exec::thread_count()
        } else {
            config.workers
        };

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(BTreeMap::new()),
            store: Mutex::new(ProfileStore::new(StoreConfig {
                budget_bytes: config.cache_budget_bytes,
                compact_max_deltas: config.compact_max_deltas,
                compact_max_chain_bytes: config.compact_max_chain_bytes,
            })),
            metrics: ServiceMetrics::new(),
            portfolio: PortfolioMetrics::new(),
            priors: Mutex::new(PriorStore::new()),
            open_connections: AtomicUsize::new(0),
            watch_seq: Mutex::new(0),
            watch_cv: Condvar::new(),
            identity: match config.shard_id {
                Some(id) => FleetIdentity {
                    role: "shard",
                    shard_id: Some(id),
                },
                None => FleetIdentity::standalone(),
            },
            fleet: FleetMetrics::new(),
        });

        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn("reaper-serve-worker", workers, move |_i| {
                worker_loop(&shared);
            })
        };

        let accept_thread = spawn_accept(listener, &shared, config.connection_model)?;

        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers: Some(pool),
        })
    }

    /// A handle for fleet replication agents: apply a peer's profile
    /// state to this server's store without going through HTTP.
    pub fn sync_handle(&self) -> SyncHandle {
        SyncHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, close the queue (workers drain
    /// what was already accepted), join the accept loop and the pool, and
    /// wait bounded time for open connections to notice the flag.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Wake long-poll subscribers so they notice the flag promptly.
        self.shared.notify_watchers();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.workers.take() {
            pool.join();
        }
        // Connection threads poll the flag every READ_TIMEOUT; give them a
        // bounded number of ticks to finish in-flight responses.
        for _ in 0..100 {
            if self.shared.open_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(READ_TIMEOUT / 4);
        }
    }
}

/// Spawns the socket-facing thread for the chosen connection model.
fn spawn_accept(
    listener: TcpListener,
    shared: &Arc<Shared>,
    model: ConnectionModel,
) -> std::io::Result<JoinHandle<()>> {
    match model {
        #[cfg(unix)]
        ConnectionModel::EventLoop { max_connections } => {
            let event_loop = crate::eventloop::EventLoop::new(listener, max_connections)?;
            let handler = Arc::new(ShardHandler {
                shared: Arc::clone(shared),
            });
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name("reaper-serve-accept".to_string())
                .spawn(move || event_loop.run(&handler, &shared.shutdown))
        }
        #[cfg(not(unix))]
        ConnectionModel::EventLoop { .. } => {
            // No poll(2) on this target: serve correctly anyway.
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name("reaper-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, DEFAULT_MAX_CONN_THREADS))
        }
        ConnectionModel::ThreadPerConnection { max_threads } => {
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name("reaper-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, max_threads.max(1)))
        }
    }
}

/// Accepts connections until the shutdown flag is raised, spawning one
/// detached handler thread per connection, up to `max_threads`; beyond
/// that, connections are shed with a `503` instead of a silent hang.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, max_threads: usize) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.open_connections.load(Ordering::SeqCst) >= max_threads {
            let mut stream = stream;
            let response =
                Response::json(503, api::error_body("connection limit reached; retry"));
            let _ = http::write_response(&mut stream, &response, false);
            continue;
        }
        shared.open_connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("reaper-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.open_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): drop the
            // connection rather than the whole service.
            shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    // See Client::connect: responses must not sit in Nagle's buffer
    // waiting for a delayed ACK.
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream);
    serve_blocking(reader, shared);
}

/// The blocking request loop over any buffered source that can hand the
/// raw socket back out (`get_mut`). Shared between thread-per-connection
/// service and the event loop's watch takeover (where the source is
/// residual pipelined bytes chained in front of the socket).
fn serve_blocking<R>(mut reader: BufReader<R>, shared: &Arc<Shared>)
where
    R: Read + AsSocket,
{
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                match route(&request, shared) {
                    Routed::Plain(response) => {
                        if http::write_response(reader.get_mut().socket_mut(), &response, keep_alive)
                            .is_err()
                        {
                            return;
                        }
                    }
                    Routed::Watch(params) => {
                        if serve_watch(reader.get_mut().socket_mut(), &params, shared, keep_alive)
                            .is_err()
                        {
                            return;
                        }
                    }
                }
                if !keep_alive {
                    return;
                }
            }
            Err(HttpError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Extracts the writable socket from a blocking read source. The
/// takeover path reads from `residual-bytes ⊕ socket` but must write to
/// the socket itself.
trait AsSocket {
    fn socket_mut(&mut self) -> &mut TcpStream;
}

impl AsSocket for TcpStream {
    fn socket_mut(&mut self) -> &mut TcpStream {
        self
    }
}

#[cfg(unix)]
impl AsSocket for std::io::Chain<std::io::Cursor<Vec<u8>>, TcpStream> {
    fn socket_mut(&mut self) -> &mut TcpStream {
        self.get_mut().1
    }
}

/// [`crate::eventloop::Handler`] adapter: plain endpoints answer from
/// the loop thread; watch subscriptions (long-lived chunked streams that
/// would stall every other connection) take the socket over onto a
/// dedicated blocking thread.
#[cfg(unix)]
struct ShardHandler {
    shared: Arc<Shared>,
}

#[cfg(unix)]
impl crate::eventloop::Handler for ShardHandler {
    fn handle(
        &self,
        request: Request,
        _conn: crate::eventloop::ConnToken,
    ) -> crate::eventloop::Handled {
        match route(&request, &self.shared) {
            Routed::Plain(response) => crate::eventloop::Handled::Respond(response),
            Routed::Watch(params) => {
                let shared = Arc::clone(&self.shared);
                let keep_alive = request.keep_alive();
                crate::eventloop::Handled::TakeOver(Box::new(move |stream, residual| {
                    shared.open_connections.fetch_add(1, Ordering::SeqCst);
                    takeover_watch(stream, residual, &params, &shared, keep_alive);
                    shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                }))
            }
        }
    }
}

/// Runs a watch stream on its takeover thread, then — on keep-alive —
/// keeps serving the connection in blocking mode, replaying any
/// pipelined bytes the event loop had already read.
#[cfg(unix)]
fn takeover_watch(
    mut stream: TcpStream,
    residual: Vec<u8>,
    params: &WatchParams,
    shared: &Arc<Shared>,
    keep_alive: bool,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    if serve_watch(&mut stream, params, shared, keep_alive).is_err() || !keep_alive {
        return;
    }
    let reader = BufReader::new(std::io::Cursor::new(residual).chain(stream));
    serve_blocking(reader, shared);
}

/// How a routed request gets answered: a buffered response, or the
/// chunked watch stream that writes to the socket incrementally.
enum Routed {
    Plain(Response),
    Watch(WatchParams),
}

impl From<Response> for Routed {
    fn from(response: Response) -> Self {
        Routed::Plain(response)
    }
}

/// Validated parameters of a watch subscription.
struct WatchParams {
    id: u64,
    /// Epoch the subscriber has; `None` means "the head at subscribe
    /// time" (wait for whatever comes next).
    since: Option<u64>,
    /// Long-poll duration before an empty stream closes.
    timeout_ms: u64,
    /// Close the stream after this many events.
    max_events: u64,
}

/// Longest allowed watch long-poll; keeps connection threads bounded
/// relative to shutdown's drain loop.
const WATCH_TIMEOUT_CAP_MS: u64 = 30_000;
/// Watch long-poll used when the query string does not pick one.
const WATCH_TIMEOUT_DEFAULT_MS: u64 = 2_000;
/// Default cap on events per watch stream.
const WATCH_MAX_EVENTS_DEFAULT: u64 = 256;
/// Condvar wait granularity; bounds reaction time to shutdown.
const WATCH_TICK: Duration = Duration::from_millis(50);

/// Dispatches one request to its endpoint handler.
fn route(request: &Request, shared: &Arc<Shared>) -> Routed {
    match (request.method.as_str(), request.path()) {
        ("POST", "/v1/jobs") => submit_job(request, shared).into(),
        ("GET", "/healthz") => healthz(shared).into(),
        ("GET", "/metrics") => render_metrics(shared).into(),
        ("GET", "/v1/sync/manifest") => sync_manifest(shared).into(),
        ("POST", path) => {
            if let Some((id_text, "epochs")) = split_profile_path(path) {
                push_epoch(id_text, request, shared).into()
            } else {
                Response::json(404, api::error_body("no such resource")).into()
            }
        }
        ("GET", path) => {
            if let Some(id_text) = path.strip_prefix("/v1/jobs/") {
                job_status(id_text, shared).into()
            } else {
                match split_profile_path(path) {
                    Some((id_text, "")) => profile_bytes(id_text, request, shared).into(),
                    Some((id_text, "delta")) => delta_endpoint(id_text, request, shared).into(),
                    Some((id_text, "watch")) => watch_endpoint(id_text, request),
                    _ => Response::json(404, api::error_body("no such resource")).into(),
                }
            }
        }
        _ => Response::json(405, api::error_body("method not allowed")).into(),
    }
}

/// Splits `/v1/profiles/{id}[/action]` into `(id_text, action)`, with
/// `""` as the action for the bare profile path.
fn split_profile_path(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/v1/profiles/")?;
    match rest.split_once('/') {
        Some((id_text, action)) => Some((id_text, action)),
        None => Some((rest, "")),
    }
}

/// The strong ETag for a profile head: content hash + epoch. The hash
/// alone identifies the bytes; the epoch makes log rewinds (which cannot
/// happen, but cost nothing to guard) visible too.
fn etag_for(info: &HeadInfo) -> String {
    format!("\"{:016x}-{}\"", info.hash, info.epoch)
}

/// True when the request's `If-None-Match` matches `etag` (exact strong
/// compare over a comma-separated candidate list, plus `*`).
fn if_none_match(request: &Request, etag: &str) -> bool {
    request.header("if-none-match").is_some_and(|header| {
        header
            .split(',')
            .map(str::trim)
            .any(|candidate| candidate == etag || candidate == "*")
    })
}

/// `POST /v1/jobs`: parse, content-address, dedup-or-enqueue. Both job
/// kinds (profiling and portfolio) flow through the same record, queue,
/// and store machinery; only the worker's execution step dispatches.
fn submit_job(request: &Request, shared: &Arc<Shared>) -> Response {
    let job_request = match api::parse_job_body(&request.body) {
        Ok(r) => r,
        Err(message) => return Response::json(400, api::error_body(&message)),
    };
    if let Err(e) = job_request.validate() {
        return Response::json(400, api::error_body(&e.to_string()));
    }
    let id = job_request.job_id();

    let mut jobs = lock(&shared.jobs);
    let deduped = jobs.contains_key(&id);
    if deduped {
        // Same canonical request already known: answer from the record.
        // If it finished but its bytes were evicted, re-enqueue so the
        // profile becomes readable again (still no duplicate record).
        ServiceMetrics::inc(&shared.metrics.jobs_deduped);
        let needs_requeue = matches!(
            jobs.get(&id).map(|r| &r.status),
            Some(JobStatus::Done(_))
        ) && !lock(&shared.store).is_resident(id);
        if needs_requeue {
            let ticket = JobTicket {
                id,
                request: job_request.clone(),
                enqueued_at: metrics::now(),
            };
            if shared.queue.try_push(ticket).is_ok() {
                if let Some(record) = jobs.get_mut(&id) {
                    record.status = JobStatus::Queued;
                }
            }
        }
    } else {
        let ticket = JobTicket {
            id,
            request: job_request.clone(),
            enqueued_at: metrics::now(),
        };
        match shared.queue.try_push(ticket) {
            Ok(()) => {
                jobs.insert(
                    id,
                    JobRecord {
                        request: job_request,
                        status: JobStatus::Queued,
                    },
                );
                ServiceMetrics::inc(&shared.metrics.jobs_submitted);
            }
            Err(PushError::Full) => {
                return Response::json(503, api::error_body("job queue is full; retry later"));
            }
            Err(PushError::Closed) => {
                return Response::json(503, api::error_body("service is shutting down"));
            }
        }
    }
    let status = jobs
        .get(&id)
        .map(|r| r.status.name())
        .unwrap_or("queued");
    let body = json::obj([
        ("job_id", json::str(ProfilingRequest::format_job_id(id))),
        ("status", json::str(status)),
        ("deduped", Value::Bool(deduped)),
    ]);
    drop(jobs);
    Response::json(200, body.encode())
}

/// `GET /v1/jobs/{id}`: job record status and summary.
fn job_status(id_text: &str, shared: &Arc<Shared>) -> Response {
    let Some(id) = ProfilingRequest::parse_job_id(id_text) else {
        return Response::json(400, api::error_body("job IDs are 16 hex digits"));
    };
    let jobs = lock(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return Response::json(404, api::error_body("unknown job"));
    };
    let mut fields = vec![
        ("job_id", json::str(ProfilingRequest::format_job_id(id))),
        ("status", json::str(record.status.name())),
        ("kind", json::str(record.request.kind())),
        ("seed", json::uint(record.request.seed())),
        ("vendor", json::str(record.request.vendor().name())),
    ];
    match &record.status {
        JobStatus::Done(summary) => fields.push(("summary", summary.to_value())),
        JobStatus::Failed(reason) => fields.push(("reason", json::str(reason.clone()))),
        _ => {}
    }
    let body = json::obj(fields);
    drop(jobs);
    Response::json(200, body.encode())
}

/// Resolves `{id}` to a completed job, or the early response to send
/// instead (400/404/202/500).
fn completed_job_id(id_text: &str, shared: &Arc<Shared>) -> Result<u64, Response> {
    let Some(id) = ProfilingRequest::parse_job_id(id_text) else {
        return Err(Response::json(400, api::error_body("job IDs are 16 hex digits")));
    };
    let status = {
        let jobs = lock(&shared.jobs);
        match jobs.get(&id) {
            None => return Err(Response::json(404, api::error_body("unknown job"))),
            Some(record) => record.status.clone(),
        }
    };
    match status {
        JobStatus::Queued | JobStatus::Running => Err(Response::json(
            202,
            json::obj([
                ("job_id", json::str(ProfilingRequest::format_job_id(id))),
                ("status", json::str(status.name())),
            ])
            .encode(),
        )),
        JobStatus::Failed(reason) => Err(Response::json(500, api::error_body(&reason))),
        JobStatus::Done(_) => Ok(id),
    }
}

/// `GET /v1/profiles/{id}`: the encoded head profile (binary by
/// default, decoded cell list with `?format=json`), with strong-ETag
/// revalidation.
///
/// `If-None-Match` is checked against the head metadata *before*
/// residency, so a client holding the current ETag gets `304 Not
/// Modified` even when the bytes were evicted — and an
/// evicted-then-resubmitted job revalidates without waiting for (or
/// spending) the recompute.
fn profile_bytes(id_text: &str, request: &Request, shared: &Arc<Shared>) -> Response {
    let id = match completed_job_id(id_text, shared) {
        Ok(id) => id,
        Err(response) => return response,
    };
    let (info, fetched) = {
        let mut store = lock(&shared.store);
        let Some(info) = store.head_info(id) else {
            // Unreachable (Done ⇒ the worker seeded the log), but a
            // truthful answer exists.
            return Response::json(404, api::error_body("no profile log for this job"));
        };
        let etag = etag_for(&info);
        if if_none_match(request, &etag) {
            ServiceMetrics::inc(&shared.metrics.not_modified);
            return Response::bytes(304, Vec::new()).with_header("etag", etag);
        }
        (info, store.full_bytes(id))
    };
    let etag = etag_for(&info);
    let bytes = match fetched {
        FullQuery::Bytes(bytes) => bytes,
        FullQuery::Unknown | FullQuery::Evicted => {
            ServiceMetrics::inc(&shared.metrics.cache_misses);
            return Response::json(
                410,
                api::error_body("profile bytes were evicted; resubmit the job to recompute"),
            )
            .with_header("etag", etag);
        }
    };
    ServiceMetrics::inc(&shared.metrics.cache_hits);
    if request.query_has("format", "json") {
        match FailureProfile::from_bytes(&bytes) {
            Ok(profile) => {
                let cells: Vec<Value> = profile.iter().map(json::uint).collect();
                Response::json(
                    200,
                    json::obj([
                        ("job_id", json::str(ProfilingRequest::format_job_id(id))),
                        ("epoch", json::uint(info.epoch)),
                        ("cells", Value::Arr(cells)),
                    ])
                    .encode(),
                )
            }
            Err(e) => Response::json(500, api::error_body(&e.to_string())),
        }
    } else {
        Response::bytes(200, bytes.as_ref().clone())
            .with_header("etag", etag)
            .with_header("x-reaper-epoch", info.epoch.to_string())
    }
}

/// `POST /v1/profiles/{id}/epochs`: push a re-profiling snapshot (an
/// `RPF1` body). Appends a delta record and advances the head; an
/// unchanged snapshot consumes no epoch.
fn push_epoch(id_text: &str, request: &Request, shared: &Arc<Shared>) -> Response {
    let id = match completed_job_id(id_text, shared) {
        Ok(id) => id,
        Err(response) => return response,
    };
    let profile = match FailureProfile::from_bytes(&request.body) {
        Ok(profile) => profile,
        Err(e) => {
            return Response::json(
                400,
                api::error_body(&format!("body must be an RPF1 profile: {e}")),
            )
        }
    };
    let appended = lock(&shared.store).append_full(id, &profile);
    match appended {
        Ok(outcome) => {
            ServiceMetrics::inc(&shared.metrics.delta_pushes);
            if outcome.changed {
                shared.notify_watchers();
            }
            let etag = etag_for(&HeadInfo {
                epoch: outcome.epoch,
                hash: outcome.head_hash,
                resident: true,
            });
            Response::json(
                200,
                json::obj([
                    ("job_id", json::str(ProfilingRequest::format_job_id(id))),
                    ("epoch", json::uint(outcome.epoch)),
                    ("changed", Value::Bool(outcome.changed)),
                    ("compacted", Value::Bool(outcome.compacted)),
                    ("rebased", Value::Bool(outcome.rebased)),
                    ("chunk_deduped", Value::Bool(outcome.chunk_deduped)),
                    (
                        "delta_bytes",
                        json::uint(reaper_exec::num::to_u64(outcome.delta_bytes)),
                    ),
                ])
                .encode(),
            )
            .with_header("etag", etag)
        }
        Err(AppendError::UnknownProfile) => {
            Response::json(404, api::error_body("no profile log for this job"))
        }
    }
}

/// `GET /v1/profiles/{id}/delta?since=N`: the minimal update from epoch
/// `N` to the head — an `RPD1` chain when the log still covers `N`
/// (`x-reaper-delta: chain`), the full snapshot after compaction
/// (`x-reaper-delta: full`), or `304` when `N` is the head.
fn delta_endpoint(id_text: &str, request: &Request, shared: &Arc<Shared>) -> Response {
    let id = match completed_job_id(id_text, shared) {
        Ok(id) => id,
        Err(response) => return response,
    };
    let Some(since) = request.query_get("since").and_then(|s| s.parse::<u64>().ok()) else {
        return Response::json(
            400,
            api::error_body("`since=<epoch>` query parameter is required"),
        );
    };
    let (info, query) = {
        let mut store = lock(&shared.store);
        let Some(info) = store.head_info(id) else {
            return Response::json(404, api::error_body("no profile log for this job"));
        };
        (info, store.updates_since(id, since))
    };
    let etag = etag_for(&info);
    match query {
        DeltaQuery::Unknown => Response::json(404, api::error_body("no profile log for this job")),
        DeltaQuery::NotModified => {
            ServiceMetrics::inc(&shared.metrics.not_modified);
            Response::bytes(304, Vec::new()).with_header("etag", etag)
        }
        DeltaQuery::AheadOfHead => Response::json(
            400,
            api::error_body(&format!(
                "since={since} is beyond the head epoch {}",
                info.epoch
            )),
        ),
        DeltaQuery::Chain {
            head_epoch,
            messages,
        } => {
            ServiceMetrics::inc(&shared.metrics.delta_chains);
            let mut body = Vec::new();
            for message in messages {
                body.extend_from_slice(&message);
            }
            Response::bytes(200, body)
                .with_header("etag", etag)
                .with_header("x-reaper-delta", "chain".to_string())
                .with_header("x-reaper-epoch", head_epoch.to_string())
        }
        DeltaQuery::FullFallback { head_epoch, bytes } => {
            ServiceMetrics::inc(&shared.metrics.delta_full_fallbacks);
            Response::bytes(200, bytes.as_ref().clone())
                .with_header("etag", etag)
                .with_header("x-reaper-delta", "full".to_string())
                .with_header("x-reaper-epoch", head_epoch.to_string())
        }
        DeltaQuery::Evicted => Response::json(
            410,
            api::error_body("profile bytes were evicted; resubmit the job to recompute"),
        )
        .with_header("etag", etag),
    }
}

/// Parses `GET /v1/profiles/{id}/watch` into [`WatchParams`] (or the
/// error/`202` response to send instead).
fn watch_endpoint(id_text: &str, request: &Request) -> Routed {
    let Some(id) = ProfilingRequest::parse_job_id(id_text) else {
        return Response::json(400, api::error_body("job IDs are 16 hex digits")).into();
    };
    let parse_u64 = |key: &str| -> Result<Option<u64>, Response> {
        match request.query_get(key) {
            None => Ok(None),
            Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
                Response::json(400, api::error_body(&format!("`{key}` must be an integer")))
            }),
        }
    };
    let since = match parse_u64("since") {
        Ok(v) => v,
        Err(response) => return response.into(),
    };
    let timeout_ms = match parse_u64("timeout_ms") {
        Ok(v) => v.unwrap_or(WATCH_TIMEOUT_DEFAULT_MS).min(WATCH_TIMEOUT_CAP_MS),
        Err(response) => return response.into(),
    };
    let max_events = match parse_u64("max_events") {
        Ok(v) => v.unwrap_or(WATCH_MAX_EVENTS_DEFAULT).max(1),
        Err(response) => return response.into(),
    };
    Routed::Watch(WatchParams {
        id,
        since,
        timeout_ms,
        max_events,
    })
}

/// Streams a watch subscription: a chunked response where every chunk
/// is one self-describing wire message (`RPD1` delta or `RPF1` full
/// snapshot after compaction/eviction gaps). The stream closes at the
/// long-poll deadline, after `max_events` events, or at shutdown.
fn serve_watch(
    stream: &mut TcpStream,
    params: &WatchParams,
    shared: &Arc<Shared>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let start_info = lock(&shared.store).head_info(params.id);
    let Some(info) = start_info else {
        let response = Response::json(404, api::error_body("no profile log for this job"));
        return http::write_response(stream, &response, keep_alive);
    };
    let mut cursor = params.since.unwrap_or(info.epoch);
    http::write_chunked_head(
        stream,
        200,
        "application/octet-stream",
        &[
            ("etag", etag_for(&info)),
            ("x-reaper-epoch", cursor.to_string()),
        ],
        keep_alive,
    )?;

    let started = metrics::now();
    let deadline_micros = params.timeout_ms.saturating_mul(1000);
    let mut sent = 0u64;
    'stream: while sent < params.max_events && !shared.shutdown.load(Ordering::SeqCst) {
        let query = lock(&shared.store).updates_since(params.id, cursor);
        match query {
            DeltaQuery::Chain {
                head_epoch,
                messages,
            } => {
                for message in messages {
                    http::write_chunk(stream, &message)?;
                    ServiceMetrics::inc(&shared.metrics.watch_events);
                    sent += 1;
                    if sent >= params.max_events {
                        break;
                    }
                }
                cursor = head_epoch;
                continue;
            }
            DeltaQuery::FullFallback { head_epoch, bytes } => {
                http::write_chunk(stream, &bytes)?;
                ServiceMetrics::inc(&shared.metrics.watch_events);
                sent += 1;
                cursor = head_epoch;
                continue;
            }
            // A subscriber ahead of the head waits like one at the head:
            // the next push may catch the log up to (then past) it.
            DeltaQuery::NotModified | DeltaQuery::AheadOfHead => {}
            DeltaQuery::Unknown | DeltaQuery::Evicted => break 'stream,
        }
        // Nothing to send: sleep until a publisher bumps the sequence
        // or the long-poll deadline passes.
        let mut seq = lock(&shared.watch_seq);
        let observed = *seq;
        while *seq == observed {
            if metrics::elapsed_micros(started) >= deadline_micros
                || shared.shutdown.load(Ordering::SeqCst)
            {
                drop(seq);
                break 'stream;
            }
            seq = shared
                .watch_cv
                .wait_timeout(seq, WATCH_TICK)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        drop(seq);
        if metrics::elapsed_micros(started) >= deadline_micros {
            break;
        }
    }
    http::finish_chunked(stream)
}

/// `GET /healthz`: liveness plus fleet identity (role, shard id when
/// sharded, and the store epoch total the replication agents compare).
fn healthz(shared: &Arc<Shared>) -> Response {
    let store_epoch = lock(&shared.store).epoch_total();
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("role", json::str(shared.identity.role)),
    ];
    if let Some(id) = shared.identity.shard_id {
        fields.push(("shard_id", json::uint(id)));
    }
    fields.push(("store_epoch", json::uint(store_epoch)));
    Response::json(200, json::obj(fields).encode())
}

/// `GET /v1/sync/manifest`: every completed job's head coordinates —
/// what a replication agent needs to decide, per profile, between a
/// `delta?since=` pull and a full fetch. Entries carry the canonical
/// request body and summary so a replica can reconstruct the job record
/// without re-executing anything.
fn sync_manifest(shared: &Arc<Shared>) -> Response {
    // Lock order: jobs before store.
    let jobs = lock(&shared.jobs);
    let store = lock(&shared.store);
    let mut entries = Vec::new();
    for (id, record) in jobs.iter() {
        let JobStatus::Done(summary) = &record.status else {
            continue;
        };
        let Some(info) = store.head_info(*id) else {
            continue;
        };
        entries.push(json::obj([
            ("job_id", json::str(ProfilingRequest::format_job_id(*id))),
            ("epoch", json::uint(info.epoch)),
            ("hash", json::str(format!("{:016x}", info.hash))),
            ("resident", Value::Bool(info.resident)),
            ("request", api::job_body_value(&record.request)),
            ("summary", summary.to_value()),
        ]));
    }
    let store_epoch = store.epoch_total();
    drop(store);
    drop(jobs);
    let body = json::obj([
        ("store_epoch", json::uint(store_epoch)),
        ("entries", Value::Arr(entries)),
    ]);
    Response::json(200, body.encode())
}

/// `GET /metrics`: Prometheus text exposition.
fn render_metrics(shared: &Arc<Shared>) -> Response {
    let (gauges, store_epoch) = {
        let store = lock(&shared.store);
        (
            StoreGauges {
                profiles: store.len(),
                resident: store.resident_count(),
                used_bytes: store.used_bytes(),
                evictions: store.evictions(),
                chunk_entries: store.chunk_entries(),
                chunk_bytes: store.chunk_bytes(),
                chunk_dedup_hits: store.chunk_dedup_hits(),
            },
            store.epoch_total(),
        )
    };
    let mut text = shared.metrics.render(shared.queue.len(), &gauges);
    shared.portfolio.render(&mut text);
    metrics::render_fleet(&shared.identity, store_epoch, &shared.fleet, &mut text);
    Response::text(200, text)
}

/// Executes one ticket's request. Portfolio jobs race under a snapshot
/// of the prior store — priors reorder lane launches but never change
/// results, so execution stays a pure function of the request — and
/// return the race report alongside the profiling outcome.
fn execute_ticket(
    request: &JobRequest,
    priors: &PriorStore,
) -> Result<(ProfilingOutcome, Option<RaceOutcome>), reaper_core::RequestError> {
    match request {
        JobRequest::Profiling(r) => r.execute().map(|outcome| (outcome, None)),
        JobRequest::Portfolio(r) => r
            .execute_with_priors(priors)
            .map(|(race, outcome)| (outcome, Some(race))),
    }
}

/// One worker thread: drain the queue until it closes, executing each
/// ticket and publishing the result.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(ticket) = shared.queue.pop() {
        shared
            .metrics
            .queue_wait_micros
            .record(metrics::elapsed_micros(ticket.enqueued_at));
        set_status(shared, ticket.id, JobStatus::Running);

        let priors = lock(&shared.priors).clone();
        let started = metrics::now();
        let result = catch_unwind(AssertUnwindSafe(|| execute_ticket(&ticket.request, &priors)));
        shared
            .metrics
            .exec_micros
            .record(metrics::elapsed_micros(started));

        match result {
            Ok(Ok((outcome, race))) => {
                if let Some(race) = &race {
                    shared.portfolio.note_race(race);
                    lock(&shared.priors)
                        .record_win(ticket.request.vendor(), race.winner_strategy);
                }
                let encoded = Arc::new(outcome.run.profile.to_bytes());
                let summary = JobSummary::from_outcome(&outcome, &encoded);
                // Lock order: jobs before store.
                let mut jobs = lock(&shared.jobs);
                let mut store = lock(&shared.store);
                // A `StaleRecompute` outcome (the head moved past this
                // deterministic epoch-0 result while the bytes were
                // evicted) leaves the log non-resident on purpose:
                // clients re-enter through a fresh full push, which
                // re-bases the log.
                let inserted = store.insert_full(ticket.id, encoded);
                if let Some(record) = jobs.get_mut(&ticket.id) {
                    record.status = JobStatus::Done(summary);
                }
                drop(store);
                drop(jobs);
                if !matches!(inserted, InsertOutcome::StaleRecompute) {
                    shared.notify_watchers();
                }
                ServiceMetrics::inc(&shared.metrics.jobs_completed);
            }
            Ok(Err(e)) => {
                set_status(shared, ticket.id, JobStatus::Failed(e.to_string()));
                ServiceMetrics::inc(&shared.metrics.jobs_failed);
            }
            Err(_panic) => {
                set_status(
                    shared,
                    ticket.id,
                    JobStatus::Failed("job execution panicked".to_string()),
                );
                ServiceMetrics::inc(&shared.metrics.jobs_failed);
            }
        }
    }
}

fn set_status(shared: &Arc<Shared>, id: u64, status: JobStatus) {
    if let Some(record) = lock(&shared.jobs).get_mut(&id) {
        record.status = status;
    }
}

/// In-process handle used by fleet replication agents to mirror a
/// peer's profile state into this server's store.
///
/// Everything here is hash-verified before it lands: full installs
/// recompute the content hash of the bytes and compare against the
/// manifest's claim; delta chains go through
/// [`reaper_core::FailureProfile::apply_delta`], which verifies the
/// base and result hashes per link. A replica can therefore never
/// diverge silently — corruption degrades to `NeedFull`, and a full
/// re-fetch repairs it.
#[derive(Clone)]
pub struct SyncHandle {
    shared: Arc<Shared>,
}

impl SyncHandle {
    /// The head coordinates of one profile, if known.
    pub fn head_of(&self, id: u64) -> Option<HeadInfo> {
        lock(&self.shared.store).head_info(id)
    }

    /// Sum of head epochs across the store — the `store_epoch` gauge.
    pub fn store_epoch(&self) -> u64 {
        lock(&self.shared.store).epoch_total()
    }

    /// Counts one replication pull against this server's fleet metrics.
    pub fn note_replication_pull(&self) {
        ServiceMetrics::inc(&self.shared.fleet.replication_pulls);
    }

    /// Installs a peer's full snapshot at the peer's exact epoch,
    /// creating the job record if this replica has never seen the job.
    ///
    /// Verifies `expected_hash` against the actual bytes first; a
    /// mismatch returns [`SyncApply::NeedFull`] without touching the
    /// store. Preserving the peer's epoch (rather than restarting at 0)
    /// is what makes replica ETags byte-identical to the primary's — a
    /// client failing over revalidates with `If-None-Match` and pays
    /// zero recompute.
    pub fn install_full(
        &self,
        id: u64,
        epoch: u64,
        expected_hash: u64,
        bytes: Vec<u8>,
        request: &JobRequest,
        summary: JobSummary,
    ) -> SyncApply {
        if delta::content_hash(&bytes) != expected_hash {
            return SyncApply::NeedFull;
        }
        // Lock order: jobs before store.
        let mut jobs = lock(&self.shared.jobs);
        let mut store = lock(&self.shared.store);
        let record = jobs.entry(id).or_insert_with(|| JobRecord {
            request: request.clone(),
            status: JobStatus::Done(summary.clone()),
        });
        if !matches!(record.status, JobStatus::Done(_)) {
            record.status = JobStatus::Done(summary);
        }
        let applied = store.sync_install_full(id, epoch, Arc::new(bytes));
        drop(store);
        drop(jobs);
        if matches!(applied, SyncApply::Applied { .. }) {
            self.shared.notify_watchers();
        }
        applied
    }

    /// Applies an encoded `RPD1` delta chain (the `delta?since=` wire
    /// body) to a profile this replica already holds.
    ///
    /// Applies link by link under one store lock (pure computation — no
    /// I/O under the guard); the first link that fails hash
    /// verification or does not extend the local head aborts the chain
    /// with [`SyncApply::NeedFull`].
    pub fn apply_delta_chain(&self, id: u64, wire: &[u8]) -> SyncApply {
        let Ok(chain) = ProfileDelta::decode_chain(wire) else {
            return SyncApply::NeedFull;
        };
        if chain.is_empty() {
            return SyncApply::NoOp;
        }
        let mut outcome = SyncApply::NoOp;
        let mut advanced = false;
        {
            let mut store = lock(&self.shared.store);
            for d in &chain {
                match store.sync_apply_delta(id, d) {
                    SyncApply::Applied { epoch, hash } => {
                        outcome = SyncApply::Applied { epoch, hash };
                        advanced = true;
                    }
                    SyncApply::NoOp => {}
                    SyncApply::NeedFull => return SyncApply::NeedFull,
                }
            }
        }
        if advanced {
            self.shared.notify_watchers();
        }
        outcome
    }
}
