//! The profiling service: accept loop, job queue, worker pool, and the
//! HTTP endpoint handlers.
//!
//! ## Determinism under concurrent clients
//!
//! Every job is a pure function of its [`ProfilingRequest`], and the job
//! ID is the hash of the request's canonical bytes — so scheduling
//! (which worker runs a job, in what order, at what thread count) can
//! only affect *when* a result appears, never *what* it is. Two clients
//! racing to submit the same request collide on the same ID; the first
//! enqueues the execution, the second is answered from the existing
//! record ("dedup"), and both read back the same bytes.
//!
//! ## Lock ordering
//!
//! `jobs` before `cache`, everywhere. Handlers take at most both; the
//! worker takes them in the same order when publishing a result.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use reaper_core::ProfilingRequest;
use reaper_exec::pool::{BoundedQueue, PushError, WorkerPool};

use crate::api::{self, JobSummary};
use crate::cache::ResultCache;
use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::metrics::{self, MetricsSnapshot, ServiceMetrics};

/// Socket read timeout for keep-alive connections; bounds how long a
/// connection thread can ignore the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Locks a mutex, recovering from poisoning (a panicked worker must not
/// take the whole service down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Service configuration; `Default` gives an ephemeral-port localhost
/// server sized for tests.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads; 0 means [`reaper_exec::thread_count`].
    pub workers: usize,
    /// Job-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_budget_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_budget_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Lifecycle of a job record.
#[derive(Debug, Clone)]
enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; summary retained even if the profile bytes get evicted.
    Done(JobSummary),
    /// Execution failed (validation race or worker panic), with a reason.
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One job record, kept for the server's lifetime (records are a few
/// hundred bytes; the byte-heavy profile lives in the evictable cache).
struct JobRecord {
    request: ProfilingRequest,
    status: JobStatus,
}

/// A queued unit of work.
struct JobTicket {
    id: u64,
    request: ProfilingRequest,
    enqueued_at: std::time::Instant,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<JobTicket>,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
    cache: Mutex<ResultCache>,
    metrics: ServiceMetrics,
    open_connections: AtomicUsize,
}

/// A running profiling service; dropping it without calling
/// [`Server::shutdown`] leaks the listener thread for the process
/// lifetime, so tests should always shut down explicitly.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Server {
    /// Binds the listener, spawns the worker pool and accept loop, and
    /// returns once the service is reachable.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            reaper_exec::thread_count()
        } else {
            config.workers
        };

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(BTreeMap::new()),
            cache: Mutex::new(ResultCache::new(config.cache_budget_bytes)),
            metrics: ServiceMetrics::new(),
            open_connections: AtomicUsize::new(0),
        });

        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn("reaper-serve-worker", workers, move |_i| {
                worker_loop(&shared);
            })
        };

        let accept_thread = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("reaper-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers: Some(pool),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, close the queue (workers drain
    /// what was already accepted), join the accept loop and the pool, and
    /// wait bounded time for open connections to notice the flag.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.workers.take() {
            pool.join();
        }
        // Connection threads poll the flag every READ_TIMEOUT; give them a
        // bounded number of ticks to finish in-flight responses.
        for _ in 0..100 {
            if self.shared.open_connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(READ_TIMEOUT / 4);
        }
    }
}

/// Accepts connections until the shutdown flag is raised, spawning one
/// detached handler thread per connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.open_connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("reaper-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.open_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): drop the
            // connection rather than the whole service.
            shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    // See Client::connect: responses must not sit in Nagle's buffer
    // waiting for a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                let response = route(&request, shared);
                if http::write_response(reader.get_mut(), &response, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(HttpError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one request to its endpoint handler.
fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    match (request.method.as_str(), request.path()) {
        ("POST", "/v1/jobs") => submit_job(request, shared),
        ("GET", "/healthz") => Response::json(200, json::obj([("ok", Value::Bool(true))]).encode()),
        ("GET", "/metrics") => render_metrics(shared),
        ("GET", path) => {
            if let Some(id_text) = path.strip_prefix("/v1/jobs/") {
                job_status(id_text, shared)
            } else if let Some(id_text) = path.strip_prefix("/v1/profiles/") {
                profile_bytes(id_text, request, shared)
            } else {
                Response::json(404, api::error_body("no such resource"))
            }
        }
        _ => Response::json(405, api::error_body("method not allowed")),
    }
}

/// `POST /v1/jobs`: parse, content-address, dedup-or-enqueue.
fn submit_job(request: &Request, shared: &Arc<Shared>) -> Response {
    let profiling_request = match api::parse_job_body(&request.body) {
        Ok(r) => r,
        Err(message) => return Response::json(400, api::error_body(&message)),
    };
    if let Err(e) = profiling_request.validate() {
        return Response::json(400, api::error_body(&e.to_string()));
    }
    let id = profiling_request.job_id();

    let mut jobs = lock(&shared.jobs);
    let deduped = jobs.contains_key(&id);
    if deduped {
        // Same canonical request already known: answer from the record.
        // If it finished but its bytes were evicted, re-enqueue so the
        // profile becomes readable again (still no duplicate record).
        ServiceMetrics::inc(&shared.metrics.jobs_deduped);
        let needs_requeue = matches!(
            jobs.get(&id).map(|r| &r.status),
            Some(JobStatus::Done(_))
        ) && !lock(&shared.cache).contains(id);
        if needs_requeue {
            let ticket = JobTicket {
                id,
                request: profiling_request.clone(),
                enqueued_at: metrics::now(),
            };
            if shared.queue.try_push(ticket).is_ok() {
                if let Some(record) = jobs.get_mut(&id) {
                    record.status = JobStatus::Queued;
                }
            }
        }
    } else {
        let ticket = JobTicket {
            id,
            request: profiling_request.clone(),
            enqueued_at: metrics::now(),
        };
        match shared.queue.try_push(ticket) {
            Ok(()) => {
                jobs.insert(
                    id,
                    JobRecord {
                        request: profiling_request,
                        status: JobStatus::Queued,
                    },
                );
                ServiceMetrics::inc(&shared.metrics.jobs_submitted);
            }
            Err(PushError::Full) => {
                return Response::json(503, api::error_body("job queue is full; retry later"));
            }
            Err(PushError::Closed) => {
                return Response::json(503, api::error_body("service is shutting down"));
            }
        }
    }
    let status = jobs
        .get(&id)
        .map(|r| r.status.name())
        .unwrap_or("queued");
    let body = json::obj([
        ("job_id", json::str(ProfilingRequest::format_job_id(id))),
        ("status", json::str(status)),
        ("deduped", Value::Bool(deduped)),
    ]);
    drop(jobs);
    Response::json(200, body.encode())
}

/// `GET /v1/jobs/{id}`: job record status and summary.
fn job_status(id_text: &str, shared: &Arc<Shared>) -> Response {
    let Some(id) = ProfilingRequest::parse_job_id(id_text) else {
        return Response::json(400, api::error_body("job IDs are 16 hex digits"));
    };
    let jobs = lock(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return Response::json(404, api::error_body("unknown job"));
    };
    let mut fields = vec![
        ("job_id", json::str(ProfilingRequest::format_job_id(id))),
        ("status", json::str(record.status.name())),
        ("seed", json::uint(record.request.seed)),
        ("vendor", json::str(record.request.vendor.name())),
    ];
    match &record.status {
        JobStatus::Done(summary) => fields.push(("summary", summary.to_value())),
        JobStatus::Failed(reason) => fields.push(("reason", json::str(reason.clone()))),
        _ => {}
    }
    let body = json::obj(fields);
    drop(jobs);
    Response::json(200, body.encode())
}

/// `GET /v1/profiles/{id}`: the encoded profile (binary by default,
/// decoded cell list with `?format=json`).
fn profile_bytes(id_text: &str, request: &Request, shared: &Arc<Shared>) -> Response {
    let Some(id) = ProfilingRequest::parse_job_id(id_text) else {
        return Response::json(400, api::error_body("job IDs are 16 hex digits"));
    };
    let status = {
        let jobs = lock(&shared.jobs);
        match jobs.get(&id) {
            None => return Response::json(404, api::error_body("unknown job")),
            Some(record) => record.status.clone(),
        }
    };
    match status {
        JobStatus::Queued | JobStatus::Running => Response::json(
            202,
            json::obj([
                ("job_id", json::str(ProfilingRequest::format_job_id(id))),
                ("status", json::str(status.name())),
            ])
            .encode(),
        ),
        JobStatus::Failed(reason) => Response::json(500, api::error_body(&reason)),
        JobStatus::Done(_) => {
            let cached = lock(&shared.cache).get(id);
            let Some(bytes) = cached else {
                ServiceMetrics::inc(&shared.metrics.cache_misses);
                return Response::json(
                    410,
                    api::error_body("profile bytes were evicted; resubmit the job to recompute"),
                );
            };
            ServiceMetrics::inc(&shared.metrics.cache_hits);
            if request.query_has("format", "json") {
                match reaper_core::FailureProfile::from_bytes(&bytes) {
                    Ok(profile) => {
                        let cells: Vec<Value> =
                            profile.iter().map(json::uint).collect();
                        Response::json(
                            200,
                            json::obj([
                                ("job_id", json::str(ProfilingRequest::format_job_id(id))),
                                ("cells", Value::Arr(cells)),
                            ])
                            .encode(),
                        )
                    }
                    Err(e) => Response::json(500, api::error_body(&e.to_string())),
                }
            } else {
                Response::bytes(200, bytes.as_ref().clone())
                    .with_header("etag", format!("\"{}\"", ProfilingRequest::format_job_id(id)))
            }
        }
    }
}

/// `GET /metrics`: Prometheus text exposition.
fn render_metrics(shared: &Arc<Shared>) -> Response {
    let (entries, used, evictions) = {
        let cache = lock(&shared.cache);
        (cache.len(), cache.used_bytes(), cache.evictions())
    };
    let text = shared
        .metrics
        .render(shared.queue.len(), entries, used, evictions);
    Response::text(200, text)
}

/// One worker thread: drain the queue until it closes, executing each
/// ticket and publishing the result.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(ticket) = shared.queue.pop() {
        shared
            .metrics
            .queue_wait_micros
            .record(metrics::elapsed_micros(ticket.enqueued_at));
        set_status(shared, ticket.id, JobStatus::Running);

        let started = metrics::now();
        let result = catch_unwind(AssertUnwindSafe(|| ticket.request.execute()));
        shared
            .metrics
            .exec_micros
            .record(metrics::elapsed_micros(started));

        match result {
            Ok(Ok(outcome)) => {
                let encoded = Arc::new(outcome.run.profile.to_bytes());
                let summary = JobSummary::from_outcome(&outcome, encoded.len());
                // Lock order: jobs before cache.
                let mut jobs = lock(&shared.jobs);
                let mut cache = lock(&shared.cache);
                cache.insert(ticket.id, encoded);
                if let Some(record) = jobs.get_mut(&ticket.id) {
                    record.status = JobStatus::Done(summary);
                }
                drop(cache);
                drop(jobs);
                ServiceMetrics::inc(&shared.metrics.jobs_completed);
            }
            Ok(Err(e)) => {
                set_status(shared, ticket.id, JobStatus::Failed(e.to_string()));
                ServiceMetrics::inc(&shared.metrics.jobs_failed);
            }
            Err(_panic) => {
                set_status(
                    shared,
                    ticket.id,
                    JobStatus::Failed("job execution panicked".to_string()),
                );
                ServiceMetrics::inc(&shared.metrics.jobs_failed);
            }
        }
    }
}

fn set_status(shared: &Arc<Shared>, id: u64, status: JobStatus) {
    if let Some(record) = lock(&shared.jobs).get_mut(&id) {
        record.status = status;
    }
}
