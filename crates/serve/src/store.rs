//! The streaming profile store: one append-then-compact epoch log per
//! profile, with content-addressed delta-chunk dedup and LRU byte-budget
//! eviction.
//!
//! ## Epoch-log lifecycle
//!
//! A profile enters the store when its job completes
//! ([`ProfileStore::insert_full`], epoch 0). Re-profiling pushes later
//! snapshots ([`ProfileStore::append_full`]); each push that changed
//! cells appends one `RPD1` delta record to the log and moves the head.
//! When the chain grows past the epoch budget (`compact_max_deltas`
//! records) or the byte budget (`compact_max_chain_bytes` of payload),
//! the log **compacts**: the head snapshot becomes the new base, the
//! chain drops, and its chunk references are released. Decoding
//! `base + deltas[..k]` is byte-identical to the directly encoded
//! profile at epoch `base_epoch + k` — the compaction-equivalence
//! property test in `tests/epoch_log.rs` holds every prefix to that.
//!
//! ## Chunk dedup
//!
//! Delta payloads are stored once per distinct content
//! ([`reaper_retention::delta::chunk_id_of`]); per-profile records keep
//! only the small header. Two same-vendor DIMMs whose re-profiling
//! epochs churned the same cells therefore share payload bytes, which is
//! the fleet-scale dedup the delta codec's header/payload split exists
//! for.
//!
//! ## Eviction
//!
//! Under byte pressure the least-recently-used profile's bytes are
//! evicted: base and head snapshots drop, the chain drops, chunk refs
//! release — but the log's *metadata* (head epoch and content hash)
//! survives. That is what lets a conditional `GET` with a current ETag
//! revalidate to `304 Not Modified` with zero bytes resident and zero
//! recomputation. Deterministic jobs reattach on recompute when the
//! bytes still hash to the recorded head; profiles whose head had moved
//! past the job's epoch-0 result via pushes re-enter through a fresh
//! full push (re-base) instead.
//!
//! Recency is a logical tick counter, not a clock (lint rule D2), and
//! every map is a `BTreeMap` (lint rule D1), as in the result cache this
//! store grew out of.

use std::collections::BTreeMap;
use std::sync::Arc;

use reaper_core::FailureProfile;
use reaper_retention::delta::{self, ProfileDelta};

/// Epoch/byte budgets and the overall byte budget of the store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Total byte budget over snapshots and delta chunks.
    pub budget_bytes: usize,
    /// Compact a log once its chain holds this many delta records.
    pub compact_max_deltas: usize,
    /// Compact a log once its chain's payload bytes exceed this.
    pub compact_max_chain_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 16 * 1024 * 1024,
            compact_max_deltas: 8,
            compact_max_chain_bytes: 256 * 1024,
        }
    }
}

/// One delta record: the `RPD1` header bound to a shared payload chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Epoch the delta applies on top of.
    pub base_epoch: u64,
    /// Epoch after applying.
    pub new_epoch: u64,
    /// Content hash of the pre-apply full encoding.
    pub base_hash: u64,
    /// Content hash of the post-apply full encoding.
    pub result_hash: u64,
    /// Content address of the payload in the chunk store.
    pub chunk_id: u64,
}

/// One profile's epoch log.
struct ProfileEntry {
    /// Epoch of the oldest reconstructable snapshot.
    base_epoch: u64,
    /// Content hash of the base encoding (kept across eviction).
    base_hash: u64,
    /// Base snapshot bytes; `None` after eviction.
    base: Option<Arc<Vec<u8>>>,
    /// Current epoch.
    head_epoch: u64,
    /// Content hash of the head encoding (kept across eviction).
    head_hash: u64,
    /// Head snapshot bytes; `None` after eviction. Shares the base Arc
    /// while the chain is empty.
    head: Option<Arc<Vec<u8>>>,
    /// Consecutive delta records from `base_epoch` to `head_epoch`.
    deltas: Vec<DeltaRecord>,
    /// Recency tick while resident (absent from the LRU ring otherwise).
    tick: Option<u64>,
}

impl ProfileEntry {
    /// Bytes this entry's snapshots pin (chunks are accounted globally).
    fn snapshot_bytes(&self) -> usize {
        let base_len = self.base.as_ref().map_or(0, |b| b.len());
        let head_len = match (&self.base, &self.head) {
            (Some(b), Some(h)) if Arc::ptr_eq(b, h) => 0,
            (_, Some(h)) => h.len(),
            (_, None) => 0,
        };
        base_len + head_len
    }
}

/// A reference-counted delta payload shared across logs.
struct ChunkEntry {
    payload: Arc<Vec<u8>>,
    refs: u64,
}

/// Result of publishing a job's (deterministic, epoch-0) result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// First sighting: a fresh log at epoch 0.
    Created,
    /// The log already had resident bytes; nothing changed.
    AlreadyResident,
    /// Evicted log whose recorded head hash matches these bytes: the
    /// snapshot reattached (no epoch change).
    Reattached,
    /// Evicted log whose head had moved past this result via pushed
    /// epochs; the recompute is stale and was not stored. A fresh full
    /// push re-bases the log.
    StaleRecompute,
}

/// Result of appending a pushed re-profiling snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Epoch of the log head after the push.
    pub epoch: u64,
    /// Content hash of the head encoding after the push.
    pub head_hash: u64,
    /// False when the snapshot equaled the head (no epoch consumed).
    pub changed: bool,
    /// Encoded `RPD1` message size, when a delta was appended.
    pub delta_bytes: usize,
    /// Chunk ID of the appended delta payload, when one was appended.
    pub chunk_id: Option<u64>,
    /// True when the payload already existed in the chunk store.
    pub chunk_deduped: bool,
    /// True when this push triggered compaction.
    pub compacted: bool,
    /// True when the log had been evicted and this snapshot re-based it.
    pub rebased: bool,
}

/// Why a push could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// No log under that ID (the job never completed).
    UnknownProfile,
}

/// Answer to a full-profile read.
pub enum FullQuery {
    /// No log under that ID.
    Unknown,
    /// The head snapshot.
    Bytes(Arc<Vec<u8>>),
    /// The log exists but its bytes were evicted.
    Evicted,
}

/// Answer to a delta-chain read (`?since=` / watch).
pub enum DeltaQuery {
    /// No log under that ID.
    Unknown,
    /// `since` is already the head epoch.
    NotModified,
    /// `since` is beyond the head (client from the future).
    AheadOfHead,
    /// The minimal chain of `RPD1` messages, one per epoch after
    /// `since`, in epoch order, ending at `head_epoch`.
    Chain {
        /// Epoch after applying the whole chain.
        head_epoch: u64,
        /// One encoded `RPD1` message per epoch.
        messages: Vec<Vec<u8>>,
    },
    /// `since` predates the base (compacted away): the full head
    /// snapshot instead.
    FullFallback {
        /// Epoch of the snapshot.
        head_epoch: u64,
        /// The `RPF1` head encoding.
        bytes: Arc<Vec<u8>>,
    },
    /// A fallback was needed but the bytes were evicted.
    Evicted,
}

/// Outcome of a replication install or delta apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncApply {
    /// The local log advanced to the peer's state.
    Applied {
        /// Head epoch after the apply (the peer's epoch, verbatim).
        epoch: u64,
        /// Head content hash after the apply.
        hash: u64,
    },
    /// The local log was already at or past the peer's state.
    NoOp,
    /// The delta (or snapshot) cannot apply here — missing log,
    /// non-resident head, or a base/hash mismatch; the caller should
    /// pull the full snapshot instead.
    NeedFull,
}

/// The raw epoch log as [`ProfileStore::log_snapshot`] exposes it:
/// `(base_epoch, base snapshot bytes if resident, encoded chain)`.
pub type LogSnapshot = (u64, Option<Arc<Vec<u8>>>, Vec<Vec<u8>>);

/// Head metadata that survives eviction (the ETag source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadInfo {
    /// Current epoch.
    pub epoch: u64,
    /// Content hash of the head encoding.
    pub hash: u64,
    /// Whether the head snapshot bytes are resident.
    pub resident: bool,
}

/// The streaming profile store. See the module docs for the lifecycle.
pub struct ProfileStore {
    profiles: BTreeMap<u64, ProfileEntry>,
    chunks: BTreeMap<u64, ChunkEntry>,
    /// tick → id ring ordering resident entries cold-to-hot; ticks are
    /// unique (monotonic counter), so this is a faithful LRU order.
    by_tick: BTreeMap<u64, u64>,
    used_bytes: usize,
    config: StoreConfig,
    next_tick: u64,
    evictions: u64,
    chunk_dedup_hits: u64,
}

impl ProfileStore {
    /// An empty store under the given budgets.
    pub fn new(config: StoreConfig) -> Self {
        Self {
            profiles: BTreeMap::new(),
            chunks: BTreeMap::new(),
            by_tick: BTreeMap::new(),
            used_bytes: 0,
            config,
            next_tick: 0,
            evictions: 0,
            chunk_dedup_hits: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        let t = self.next_tick;
        self.next_tick += 1;
        t
    }

    /// Refreshes `id`'s recency (resident entries only).
    fn touch(&mut self, id: u64) {
        let tick = self.bump();
        if let Some(entry) = self.profiles.get_mut(&id) {
            if entry.base.is_none() && entry.head.is_none() {
                return;
            }
            if let Some(old) = entry.tick.replace(tick) {
                self.by_tick.remove(&old);
            }
            self.by_tick.insert(tick, id);
        }
    }

    /// Takes one reference on `payload`'s chunk, inserting it on first
    /// sight. Returns (chunk id, whether it already existed).
    fn retain_chunk(&mut self, payload: Vec<u8>) -> (u64, bool) {
        let id = delta::chunk_id_of(&payload);
        if let Some(chunk) = self.chunks.get_mut(&id) {
            chunk.refs += 1;
            self.chunk_dedup_hits += 1;
            return (id, true);
        }
        self.used_bytes += payload.len();
        self.chunks.insert(
            id,
            ChunkEntry {
                payload: Arc::new(payload),
                refs: 1,
            },
        );
        (id, false)
    }

    /// Releases one reference on a chunk, dropping it at zero.
    fn release_chunk(&mut self, id: u64) {
        let Some(chunk) = self.chunks.get_mut(&id) else {
            return;
        };
        chunk.refs = chunk.refs.saturating_sub(1);
        if chunk.refs == 0 {
            let len = chunk.payload.len();
            self.chunks.remove(&id);
            self.used_bytes -= len;
        }
    }

    /// Evicts cold resident entries until the budget holds, never
    /// touching `protect` (the entry being written).
    fn enforce_budget(&mut self, protect: u64) {
        while self.used_bytes > self.config.budget_bytes {
            let Some((&tick, &cold_id)) = self
                .by_tick
                .iter()
                .find(|&(_, &id)| id != protect)
            else {
                break;
            };
            self.by_tick.remove(&tick);
            self.evict_entry(cold_id);
            self.evictions += 1;
        }
    }

    /// Drops an entry's bytes and chain, keeping head metadata.
    fn evict_entry(&mut self, id: u64) {
        let Some(entry) = self.profiles.get_mut(&id) else {
            return;
        };
        self.used_bytes -= entry.snapshot_bytes();
        entry.base = None;
        entry.head = None;
        entry.tick = None;
        // The chain is useless without its base; promote the metadata to
        // the head so a matching recompute or a fresh push can re-enter.
        entry.base_epoch = entry.head_epoch;
        entry.base_hash = entry.head_hash;
        let released: Vec<u64> = entry.deltas.drain(..).map(|d| d.chunk_id).collect();
        for chunk_id in released {
            self.release_chunk(chunk_id);
        }
    }

    /// Publishes a job's deterministic result as the log's epoch 0 (or
    /// reattaches it after eviction). Oversized snapshots (larger than
    /// the whole budget) keep their metadata but stay non-resident.
    pub fn insert_full(&mut self, id: u64, bytes: Arc<Vec<u8>>) -> InsertOutcome {
        let hash = delta::content_hash(&bytes);
        let fits = bytes.len() <= self.config.budget_bytes;
        let outcome = match self.profiles.get_mut(&id) {
            None => {
                let entry = ProfileEntry {
                    base_epoch: 0,
                    base_hash: hash,
                    base: fits.then(|| Arc::clone(&bytes)),
                    head_epoch: 0,
                    head_hash: hash,
                    head: fits.then(|| Arc::clone(&bytes)),
                    deltas: Vec::new(),
                    tick: None,
                };
                self.used_bytes += entry.snapshot_bytes();
                self.profiles.insert(id, entry);
                InsertOutcome::Created
            }
            Some(entry) if entry.head.is_some() => InsertOutcome::AlreadyResident,
            Some(entry) => {
                if entry.head_hash != hash {
                    return InsertOutcome::StaleRecompute;
                }
                if fits {
                    entry.base = Some(Arc::clone(&bytes));
                    entry.head = Some(Arc::clone(&bytes));
                    let grown = entry.snapshot_bytes();
                    self.used_bytes += grown;
                }
                InsertOutcome::Reattached
            }
        };
        self.touch(id);
        self.enforce_budget(id);
        outcome
    }

    /// Appends a pushed re-profiling snapshot to `id`'s log: computes
    /// the delta against the head, stores it (chunk-deduped), moves the
    /// head, and compacts when the chain exceeds its budgets. On an
    /// evicted log the snapshot re-bases it at the next epoch.
    ///
    /// # Errors
    /// [`AppendError::UnknownProfile`] when no log exists under `id`.
    pub fn append_full(
        &mut self,
        id: u64,
        profile: &FailureProfile,
    ) -> Result<AppendOutcome, AppendError> {
        let new_bytes = profile.to_bytes();
        let new_hash = delta::content_hash(&new_bytes);
        let Some(entry) = self.profiles.get_mut(&id) else {
            return Err(AppendError::UnknownProfile);
        };

        if new_hash == entry.head_hash {
            let outcome = AppendOutcome {
                epoch: entry.head_epoch,
                head_hash: entry.head_hash,
                changed: false,
                delta_bytes: 0,
                chunk_id: None,
                chunk_deduped: false,
                compacted: false,
                rebased: false,
            };
            self.touch(id);
            return Ok(outcome);
        }

        let head_profile = entry
            .head
            .as_ref()
            .and_then(|bytes| FailureProfile::from_bytes(bytes).ok());
        let Some(head_profile) = head_profile else {
            // Evicted (or, unreachably, undecodable) head: re-base the
            // log on this snapshot at the next epoch.
            let old = entry.snapshot_bytes();
            let epoch = entry.head_epoch + 1;
            let fits = new_bytes.len() <= self.config.budget_bytes;
            let arc = Arc::new(new_bytes);
            entry.base_epoch = epoch;
            entry.base_hash = new_hash;
            entry.base = fits.then(|| Arc::clone(&arc));
            entry.head_epoch = epoch;
            entry.head_hash = new_hash;
            entry.head = fits.then_some(arc);
            self.used_bytes += entry.snapshot_bytes();
            self.used_bytes -= old;
            self.touch(id);
            self.enforce_budget(id);
            return Ok(AppendOutcome {
                epoch,
                head_hash: new_hash,
                changed: true,
                delta_bytes: 0,
                chunk_id: None,
                chunk_deduped: false,
                compacted: false,
                rebased: true,
            });
        };

        let new_epoch = entry.head_epoch + 1;
        let d = ProfileDelta::compute(
            head_profile.iter(),
            profile.iter(),
            entry.head_epoch,
            new_epoch,
            entry.head_hash,
            new_hash,
        );
        let record = DeltaRecord {
            base_epoch: entry.head_epoch,
            new_epoch,
            base_hash: entry.head_hash,
            result_hash: new_hash,
            chunk_id: d.chunk_id(),
        };
        let payload = d.payload_bytes();
        let delta_bytes =
            delta::encode_message(0, 1, 0, 0, 0, &payload).len();

        let old = entry.snapshot_bytes();
        entry.deltas.push(record);
        entry.head_epoch = new_epoch;
        entry.head_hash = new_hash;
        let fits = new_bytes.len() <= self.config.budget_bytes;
        entry.head = fits.then(|| Arc::new(new_bytes));
        let grown = entry.snapshot_bytes();
        self.used_bytes += grown;
        self.used_bytes -= old;

        let (chunk_id, chunk_deduped) = self.retain_chunk(payload);

        let compacted = self.maybe_compact(id);
        self.touch(id);
        self.enforce_budget(id);
        Ok(AppendOutcome {
            epoch: new_epoch,
            head_hash: new_hash,
            changed: true,
            delta_bytes,
            chunk_id: Some(chunk_id),
            chunk_deduped,
            compacted,
            rebased: false,
        })
    }

    /// Sum of the chain's payload bytes for `id`.
    fn chain_payload_bytes(&self, entry: &ProfileEntry) -> usize {
        entry
            .deltas
            .iter()
            .filter_map(|d| self.chunks.get(&d.chunk_id))
            .map(|c| c.payload.len())
            .sum()
    }

    /// Folds the chain into a new base when it exceeds the epoch or
    /// byte budget. Returns whether compaction ran.
    fn maybe_compact(&mut self, id: u64) -> bool {
        let Some(entry) = self.profiles.get(&id) else {
            return false;
        };
        let over_epochs = entry.deltas.len() >= self.config.compact_max_deltas;
        let over_bytes = self.chain_payload_bytes(entry) > self.config.compact_max_chain_bytes;
        if !(over_epochs || over_bytes) {
            return false;
        }
        let Some(entry) = self.profiles.get_mut(&id) else {
            return false;
        };
        let old = entry.snapshot_bytes();
        entry.base = entry.head.as_ref().map(Arc::clone);
        entry.base_epoch = entry.head_epoch;
        entry.base_hash = entry.head_hash;
        let released: Vec<u64> = entry.deltas.drain(..).map(|d| d.chunk_id).collect();
        let grown = entry.snapshot_bytes();
        self.used_bytes += grown;
        self.used_bytes -= old;
        for chunk_id in released {
            self.release_chunk(chunk_id);
        }
        true
    }

    /// Installs a peer's full head snapshot at the peer's *exact* epoch
    /// — the replication entry point. Unlike [`ProfileStore::insert_full`]
    /// (which always seeds epoch 0) and [`ProfileStore::append_full`]
    /// (which assigns the next local epoch), this preserves the primary's
    /// epoch numbering, so a replica's ETag (`"<hash>-<epoch>"`) is
    /// byte-identical to the primary's and failover revalidation costs
    /// nothing.
    ///
    /// The snapshot re-bases the log: any local chain is dropped (its
    /// chunks released) because replication only moves *forward* to the
    /// primary's state.
    pub fn sync_install_full(&mut self, id: u64, epoch: u64, bytes: Arc<Vec<u8>>) -> SyncApply {
        let hash = delta::content_hash(&bytes);
        let fits = bytes.len() <= self.config.budget_bytes;
        let applied = match self.profiles.get_mut(&id) {
            None => {
                let entry = ProfileEntry {
                    base_epoch: epoch,
                    base_hash: hash,
                    base: fits.then(|| Arc::clone(&bytes)),
                    head_epoch: epoch,
                    head_hash: hash,
                    head: fits.then(|| Arc::clone(&bytes)),
                    deltas: Vec::new(),
                    tick: None,
                };
                self.used_bytes += entry.snapshot_bytes();
                self.profiles.insert(id, entry);
                true
            }
            Some(entry) => {
                if entry.head_epoch > epoch
                    || (entry.head_epoch == epoch && entry.head.is_some())
                {
                    // Local state is already at (or past) the peer's.
                    false
                } else if entry.head_epoch == epoch {
                    if entry.head_hash != hash {
                        // Divergence at the same epoch cannot happen for
                        // deterministic logs; refuse rather than corrupt.
                        return SyncApply::NeedFull;
                    }
                    // Evicted local copy of the same head: reattach.
                    if fits {
                        entry.base = Some(Arc::clone(&bytes));
                        entry.head = Some(Arc::clone(&bytes));
                        entry.base_epoch = epoch;
                        entry.base_hash = hash;
                        let grown = entry.snapshot_bytes();
                        self.used_bytes += grown;
                    }
                    true
                } else {
                    // Peer is ahead: re-base the log on its snapshot.
                    let old = entry.snapshot_bytes();
                    entry.base_epoch = epoch;
                    entry.base_hash = hash;
                    entry.base = fits.then(|| Arc::clone(&bytes));
                    entry.head_epoch = epoch;
                    entry.head_hash = hash;
                    entry.head = fits.then(|| Arc::clone(&bytes));
                    let released: Vec<u64> = entry.deltas.drain(..).map(|d| d.chunk_id).collect();
                    let grown = entry.snapshot_bytes();
                    self.used_bytes += grown;
                    self.used_bytes -= old;
                    for chunk_id in released {
                        self.release_chunk(chunk_id);
                    }
                    true
                }
            }
        };
        if !applied {
            return SyncApply::NoOp;
        }
        self.touch(id);
        self.enforce_budget(id);
        SyncApply::Applied {
            epoch,
            hash,
        }
    }

    /// Applies one peer `RPD1` delta on top of the local head — the
    /// cheap replication path. The apply is fully verified
    /// ([`FailureProfile::apply_delta`] checks the base hash, the set
    /// constraints, and the result hash), and the record keeps the
    /// wire's exact epochs, so the replica's chain and ETags match the
    /// primary's byte for byte.
    pub fn sync_apply_delta(&mut self, id: u64, d: &ProfileDelta) -> SyncApply {
        let Some(entry) = self.profiles.get(&id) else {
            return SyncApply::NeedFull;
        };
        if d.new_epoch <= entry.head_epoch {
            return SyncApply::NoOp;
        }
        if d.base_epoch != entry.head_epoch || d.base_hash != entry.head_hash {
            return SyncApply::NeedFull;
        }
        let head_profile = entry
            .head
            .as_ref()
            .and_then(|bytes| FailureProfile::from_bytes(bytes).ok());
        let Some(head_profile) = head_profile else {
            return SyncApply::NeedFull;
        };
        let Ok(applied) = head_profile.apply_delta(d) else {
            return SyncApply::NeedFull;
        };
        let new_bytes = applied.to_bytes();
        let fits = new_bytes.len() <= self.config.budget_bytes;
        let record = DeltaRecord {
            base_epoch: d.base_epoch,
            new_epoch: d.new_epoch,
            base_hash: d.base_hash,
            result_hash: d.result_hash,
            chunk_id: d.chunk_id(),
        };
        let Some(entry) = self.profiles.get_mut(&id) else {
            return SyncApply::NeedFull;
        };
        let old = entry.snapshot_bytes();
        entry.deltas.push(record);
        entry.head_epoch = d.new_epoch;
        entry.head_hash = d.result_hash;
        entry.head = fits.then(|| Arc::new(new_bytes));
        let grown = entry.snapshot_bytes();
        self.used_bytes += grown;
        self.used_bytes -= old;
        self.retain_chunk(d.payload_bytes());
        self.maybe_compact(id);
        self.touch(id);
        self.enforce_budget(id);
        SyncApply::Applied {
            epoch: d.new_epoch,
            hash: d.result_hash,
        }
    }

    /// Sum of every log's head epoch: a monotone logical clock over the
    /// whole store, exported as `reaper_fleet_store_epoch`.
    pub fn epoch_total(&self) -> u64 {
        self.profiles.values().map(|e| e.head_epoch).sum()
    }

    /// Head metadata for `id` (survives eviction; does not touch
    /// recency — ETag revalidation must not keep cold entries warm).
    pub fn head_info(&self, id: u64) -> Option<HeadInfo> {
        self.profiles.get(&id).map(|e| HeadInfo {
            epoch: e.head_epoch,
            hash: e.head_hash,
            resident: e.head.is_some(),
        })
    }

    /// True when `id`'s head snapshot bytes are resident.
    pub fn is_resident(&self, id: u64) -> bool {
        self.profiles.get(&id).is_some_and(|e| e.head.is_some())
    }

    /// The head snapshot bytes.
    pub fn full_bytes(&mut self, id: u64) -> FullQuery {
        let Some(entry) = self.profiles.get(&id) else {
            return FullQuery::Unknown;
        };
        let Some(bytes) = entry.head.as_ref().map(Arc::clone) else {
            return FullQuery::Evicted;
        };
        self.touch(id);
        FullQuery::Bytes(bytes)
    }

    /// The minimal update from `since` to the head: per-epoch `RPD1`
    /// messages when the chain still covers `since`, the full snapshot
    /// when compaction folded it away.
    pub fn updates_since(&mut self, id: u64, since: u64) -> DeltaQuery {
        let Some(entry) = self.profiles.get(&id) else {
            return DeltaQuery::Unknown;
        };
        if since == entry.head_epoch {
            return DeltaQuery::NotModified;
        }
        if since > entry.head_epoch {
            return DeltaQuery::AheadOfHead;
        }
        let head_epoch = entry.head_epoch;
        if since >= entry.base_epoch {
            let mut messages = Vec::new();
            for record in &entry.deltas {
                if record.new_epoch <= since {
                    continue;
                }
                let Some(chunk) = self.chunks.get(&record.chunk_id) else {
                    messages.clear();
                    break;
                };
                messages.push(delta::encode_message(
                    record.base_epoch,
                    record.new_epoch,
                    record.base_hash,
                    record.result_hash,
                    record.chunk_id,
                    &chunk.payload,
                ));
            }
            if !messages.is_empty() {
                self.touch(id);
                return DeltaQuery::Chain {
                    head_epoch,
                    messages,
                };
            }
        }
        // Compacted past `since` (or the chain was unreadable): fall
        // back to the full head snapshot.
        match entry.head.as_ref().map(Arc::clone) {
            Some(bytes) => {
                self.touch(id);
                DeltaQuery::FullFallback { head_epoch, bytes }
            }
            None => DeltaQuery::Evicted,
        }
    }

    /// The raw log for equivalence testing: base epoch, base snapshot
    /// bytes, and the chain as encoded `RPD1` messages.
    pub fn log_snapshot(&self, id: u64) -> Option<LogSnapshot> {
        let entry = self.profiles.get(&id)?;
        let chain = entry
            .deltas
            .iter()
            .filter_map(|record| {
                let chunk = self.chunks.get(&record.chunk_id)?;
                Some(delta::encode_message(
                    record.base_epoch,
                    record.new_epoch,
                    record.base_hash,
                    record.result_hash,
                    record.chunk_id,
                    &chunk.payload,
                ))
            })
            .collect();
        Some((entry.base_epoch, entry.base.as_ref().map(Arc::clone), chain))
    }

    /// Number of logs (resident or metadata-only).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Number of logs whose head snapshot bytes are resident.
    pub fn resident_count(&self) -> usize {
        self.profiles.values().filter(|e| e.head.is_some()).count()
    }

    /// True when the store holds no logs at all.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Bytes pinned by snapshots and chunks together.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.config.budget_bytes
    }

    /// Cumulative budget-pressure evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Distinct delta payloads currently stored.
    pub fn chunk_entries(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes held by delta payload chunks.
    pub fn chunk_bytes(&self) -> usize {
        self.chunks.values().map(|c| c.payload.len()).sum()
    }

    /// Cumulative pushes whose payload already existed in the chunk
    /// store (cross-profile dedup hits).
    pub fn chunk_dedup_hits(&self) -> u64 {
        self.chunk_dedup_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cells: &[u64]) -> FailureProfile {
        FailureProfile::from_cells(cells.iter().copied())
    }

    fn arc_bytes(p: &FailureProfile) -> Arc<Vec<u8>> {
        Arc::new(p.to_bytes())
    }

    fn store() -> ProfileStore {
        ProfileStore::new(StoreConfig {
            budget_bytes: 1 << 20,
            compact_max_deltas: 4,
            compact_max_chain_bytes: 1 << 16,
        })
    }

    /// Reconstructs the head by decoding base + chain with full hash
    /// verification, asserting byte identity with `expected`.
    fn assert_log_reconstructs(s: &ProfileStore, id: u64, expected: &FailureProfile) {
        let (_, base, chain) = s.log_snapshot(id).expect("log exists");
        let base = base.expect("resident");
        let mut current = FailureProfile::from_bytes(&base).expect("base decodes");
        for message in &chain {
            let d = ProfileDelta::from_bytes(message).expect("record decodes");
            current = current.apply_delta(&d).expect("chain applies in order");
        }
        assert_eq!(current.to_bytes(), expected.to_bytes());
    }

    #[test]
    fn insert_then_append_moves_head_and_keeps_equivalence() {
        let mut s = store();
        let e0 = profile(&[1, 2, 3]);
        assert_eq!(s.insert_full(7, arc_bytes(&e0)), InsertOutcome::Created);
        assert_eq!(s.insert_full(7, arc_bytes(&e0)), InsertOutcome::AlreadyResident);
        let h = s.head_info(7).expect("known");
        assert_eq!((h.epoch, h.resident), (0, true));

        let e1 = profile(&[1, 3, 4]);
        let out = s.append_full(7, &e1).expect("append");
        assert!(out.changed && !out.compacted && !out.rebased);
        assert_eq!(out.epoch, 1);
        assert_eq!(out.head_hash, e1.content_hash());
        assert!(out.delta_bytes > 0);
        assert_log_reconstructs(&s, 7, &e1);

        // Unchanged push consumes no epoch.
        let out = s.append_full(7, &e1).expect("append");
        assert!(!out.changed);
        assert_eq!(out.epoch, 1);

        match s.full_bytes(7) {
            FullQuery::Bytes(b) => assert_eq!(*b, e1.to_bytes()),
            _ => panic!("head must be resident"),
        }
        assert!(matches!(s.full_bytes(99), FullQuery::Unknown));
        assert_eq!(s.append_full(99, &e1), Err(AppendError::UnknownProfile));
    }

    #[test]
    fn compaction_folds_the_chain_at_the_epoch_budget() {
        let mut s = store();
        let mut current = profile(&[10, 20, 30]);
        s.insert_full(1, arc_bytes(&current));
        let mut compactions = 0;
        for epoch in 1..=9u64 {
            let mut cells: Vec<u64> = current.iter().collect();
            cells.push(1000 + epoch);
            current = profile(&cells);
            let out = s.append_full(1, &current).expect("append");
            assert_eq!(out.epoch, epoch);
            if out.compacted {
                compactions += 1;
                let (base_epoch, _, chain) = s.log_snapshot(1).expect("log");
                assert_eq!(base_epoch, epoch);
                assert!(chain.is_empty(), "compaction must drop the chain");
            }
            assert_log_reconstructs(&s, 1, &current);
        }
        assert!(compactions >= 2, "4-delta budget over 9 epochs must compact");
    }

    #[test]
    fn identical_churn_across_profiles_dedups_chunks() {
        let mut s = store();
        let a0 = profile(&[1, 2]);
        let b0 = profile(&[50, 60]);
        s.insert_full(1, arc_bytes(&a0));
        s.insert_full(2, arc_bytes(&b0));
        // Same churn (add 7000, remove nothing... must be same payload:
        // added=[7000], removed=[]) on both profiles.
        let a1 = profile(&[1, 2, 7000]);
        let b1 = profile(&[50, 60, 7000]);
        let oa = s.append_full(1, &a1).expect("append");
        let ob = s.append_full(2, &b1).expect("append");
        assert_eq!(oa.chunk_id, ob.chunk_id, "equal payloads share a chunk");
        assert!(!oa.chunk_deduped);
        assert!(ob.chunk_deduped, "second sighting hits the chunk store");
        assert_eq!(s.chunk_entries(), 1);
        assert_eq!(s.chunk_dedup_hits(), 1);
    }

    #[test]
    fn updates_since_serves_minimal_chains_and_falls_back_after_compaction() {
        let mut s = store();
        let mut history = vec![profile(&[5, 6])];
        s.insert_full(3, arc_bytes(&history[0]));
        for epoch in 1..=3u64 {
            let mut cells: Vec<u64> = history.last().expect("nonempty").iter().collect();
            cells.push(epoch * 100);
            history.push(profile(&cells));
            s.append_full(3, history.last().expect("nonempty")).expect("append");
        }
        // since == head → NotModified; since > head → AheadOfHead.
        assert!(matches!(s.updates_since(3, 3), DeltaQuery::NotModified));
        assert!(matches!(s.updates_since(3, 9), DeltaQuery::AheadOfHead));
        // since = 1 → exactly the records for epochs 2 and 3.
        match s.updates_since(3, 1) {
            DeltaQuery::Chain {
                head_epoch,
                messages,
            } => {
                assert_eq!(head_epoch, 3);
                assert_eq!(messages.len(), 2);
                let mut current = FailureProfile::from_bytes(
                    &history.get(1).expect("epoch 1").to_bytes(),
                )
                .expect("decodes");
                for message in &messages {
                    let d = ProfileDelta::from_bytes(message).expect("decodes");
                    current = current.apply_delta(&d).expect("applies");
                }
                assert_eq!(current, *history.last().expect("nonempty"));
            }
            _ => panic!("expected a chain"),
        }
        // Force compaction (4th delta hits the budget), then since=1 is
        // older than the base → full fallback.
        let mut cells: Vec<u64> = history.last().expect("nonempty").iter().collect();
        cells.push(9999);
        let e4 = profile(&cells);
        let out = s.append_full(3, &e4).expect("append");
        assert!(out.compacted);
        match s.updates_since(3, 1) {
            DeltaQuery::FullFallback { head_epoch, bytes } => {
                assert_eq!(head_epoch, 4);
                assert_eq!(*bytes, e4.to_bytes());
            }
            _ => panic!("expected full fallback after compaction"),
        }
        assert!(matches!(s.updates_since(42, 0), DeltaQuery::Unknown));
    }

    #[test]
    fn eviction_keeps_metadata_and_reattaches_matching_recomputes() {
        let mut s = ProfileStore::new(StoreConfig {
            budget_bytes: 64,
            compact_max_deltas: 8,
            compact_max_chain_bytes: 1 << 16,
        });
        let a = profile(&(0..40u64).collect::<Vec<_>>());
        let b = profile(&(100..140u64).collect::<Vec<_>>());
        s.insert_full(1, arc_bytes(&a));
        assert!(s.is_resident(1));
        // Inserting a second log overflows the 64-byte budget → LRU
        // evicts log 1's bytes but keeps its head metadata.
        s.insert_full(2, arc_bytes(&b));
        assert!(!s.is_resident(1), "cold log must be evicted");
        assert!(s.is_resident(2));
        assert_eq!(s.evictions(), 1);
        let h = s.head_info(1).expect("metadata survives eviction");
        assert_eq!(h.hash, a.content_hash());
        assert!(!h.resident);
        assert!(matches!(s.full_bytes(1), FullQuery::Evicted));

        // A matching recompute reattaches; a stale one is refused.
        s.insert_full(2, arc_bytes(&b)); // touch 2 so 1 stays evictable
        assert_eq!(s.insert_full(1, arc_bytes(&b)), InsertOutcome::StaleRecompute);
        assert_eq!(s.insert_full(1, arc_bytes(&a)), InsertOutcome::Reattached);
        assert!(s.is_resident(1));
        match s.full_bytes(1) {
            FullQuery::Bytes(bytes) => assert_eq!(*bytes, a.to_bytes()),
            _ => panic!("reattached bytes must serve"),
        }
    }

    #[test]
    fn evicted_log_rebases_on_the_next_push() {
        let mut s = ProfileStore::new(StoreConfig {
            budget_bytes: 64,
            compact_max_deltas: 8,
            compact_max_chain_bytes: 1 << 16,
        });
        let a0 = profile(&(0..40u64).collect::<Vec<_>>());
        s.insert_full(1, arc_bytes(&a0));
        let a1 = profile(&(1..41u64).collect::<Vec<_>>());
        s.append_full(1, &a1).expect("append");
        let h = s.head_info(1).expect("known");
        assert_eq!(h.epoch, 1);
        // Evict by inserting a hot competitor.
        let b = profile(&(100..140u64).collect::<Vec<_>>());
        s.insert_full(2, arc_bytes(&b));
        assert!(!s.is_resident(1));
        // Pushing a fresh snapshot re-bases at epoch 2.
        let a2 = profile(&(2..42u64).collect::<Vec<_>>());
        let out = s.append_full(1, &a2).expect("push after eviction");
        assert!(out.rebased && out.changed);
        assert_eq!(out.epoch, 2);
        let (base_epoch, _, chain) = s.log_snapshot(1).expect("log");
        assert_eq!(base_epoch, 2);
        assert!(chain.is_empty());
    }

    #[test]
    fn sync_install_preserves_peer_epochs_and_advances_monotonically() {
        let mut primary = store();
        let mut replica = store();
        let e0 = profile(&[1, 2, 3]);
        primary.insert_full(5, arc_bytes(&e0));
        let e1 = profile(&[1, 2, 3, 4]);
        primary.append_full(5, &e1).expect("append");
        let head = primary.head_info(5).expect("known");
        assert_eq!(head.epoch, 1);

        // Replica installs the primary's head at the primary's epoch —
        // identical HeadInfo means identical ETags.
        let bytes = match primary.full_bytes(5) {
            FullQuery::Bytes(b) => b,
            _ => panic!("resident"),
        };
        assert_eq!(
            replica.sync_install_full(5, head.epoch, Arc::clone(&bytes)),
            SyncApply::Applied {
                epoch: head.epoch,
                hash: head.hash
            }
        );
        assert_eq!(replica.head_info(5), primary.head_info(5));
        assert_eq!(replica.epoch_total(), 1);

        // Re-installing the same state is a no-op; an older snapshot
        // cannot rewind the log.
        assert_eq!(
            replica.sync_install_full(5, head.epoch, bytes),
            SyncApply::NoOp
        );
        assert_eq!(
            replica.sync_install_full(5, 0, arc_bytes(&e0)),
            SyncApply::NoOp
        );
        match replica.full_bytes(5) {
            FullQuery::Bytes(b) => assert_eq!(*b, e1.to_bytes()),
            _ => panic!("replica head must serve"),
        }
    }

    #[test]
    fn sync_apply_delta_is_hash_verified_and_chain_faithful() {
        let mut primary = store();
        let mut replica = store();
        let e0 = profile(&[10, 20]);
        primary.insert_full(8, arc_bytes(&e0));
        replica.sync_install_full(8, 0, arc_bytes(&e0));

        let e1 = profile(&[10, 20, 30]);
        primary.append_full(8, &e1).expect("append");
        // Pull the chain off the primary exactly like the replication
        // agent does and apply it.
        let messages = match primary.updates_since(8, 0) {
            DeltaQuery::Chain { messages, .. } => messages,
            _ => panic!("chain expected"),
        };
        for message in &messages {
            let d = ProfileDelta::from_bytes(message).expect("decodes");
            assert!(matches!(
                replica.sync_apply_delta(8, &d),
                SyncApply::Applied { epoch: 1, .. }
            ));
        }
        assert_eq!(replica.head_info(8), primary.head_info(8));
        match replica.full_bytes(8) {
            FullQuery::Bytes(b) => assert_eq!(*b, e1.to_bytes()),
            _ => panic!("replica head must serve"),
        }

        // Replaying the same delta is a no-op; a delta whose base does
        // not match the local head demands a full pull; an unknown log
        // demands a full pull.
        let d1 = ProfileDelta::from_bytes(messages.first().expect("one message"))
            .expect("decodes");
        assert_eq!(replica.sync_apply_delta(8, &d1), SyncApply::NoOp);
        let bogus = ProfileDelta::compute(
            profile(&[1]).iter(),
            profile(&[1, 2]).iter(),
            1,
            2,
            0xdead,
            0xbeef,
        );
        assert_eq!(replica.sync_apply_delta(8, &bogus), SyncApply::NeedFull);
        assert_eq!(replica.sync_apply_delta(99, &d1), SyncApply::NeedFull);
    }

    #[test]
    fn byte_accounting_stays_consistent() {
        let mut s = store();
        let mut current = profile(&(0..64u64).map(|i| i * 3).collect::<Vec<_>>());
        s.insert_full(9, arc_bytes(&current));
        for epoch in 1..=10u64 {
            let mut cells: Vec<u64> = current.iter().collect();
            cells.push(100_000 + epoch);
            cells.retain(|&c| c != (epoch - 1) * 3);
            current = profile(&cells);
            s.append_full(9, &current).expect("append");
            // Recompute ground-truth accounting from scratch.
            let snapshots: usize = {
                let (_, base, _) = s.log_snapshot(9).expect("log");
                let head = match s.full_bytes(9) {
                    FullQuery::Bytes(b) => b,
                    _ => panic!("resident"),
                };
                let base = base.expect("resident");
                if Arc::ptr_eq(&base, &head) {
                    base.len()
                } else {
                    base.len() + head.len()
                }
            };
            assert_eq!(
                s.used_bytes(),
                snapshots + s.chunk_bytes(),
                "epoch {epoch}: accounting drifted"
            );
        }
        assert!(s.used_bytes() <= s.budget_bytes());
    }
}
