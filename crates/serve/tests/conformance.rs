//! Protocol-conformance suite for the streaming-profile endpoints, at
//! one and four workers: the conditional-GET state machine
//! (200 → 304 → push → new ETag → 200), the `delta?since=` contract
//! (chain / 304 / 400 / full fallback after compaction), the chunked
//! watch long-poll, and the evicted-then-resubmitted regression (a
//! current ETag revalidates to 304 with zero recomputation, and a
//! matching recompute reattaches under the same ETag). The whole suite
//! runs under BOTH socket models — thread-per-connection and the
//! `poll(2)` event loop (unix) — which must be indistinguishable on
//! the wire.
//!
//! Everything lives in ONE `#[test]` because
//! `reaper_exec::set_thread_count` is process-global and cargo runs the
//! `#[test]` fns of one binary concurrently.

// Test code may panic on failure; clippy's in-tests knobs do not cover
// non-`#[test]` helper fns in integration-test binaries.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use reaper_core::{FailureProfile, ProfilingRequest};
use reaper_portfolio::{LaneStatus, PortfolioRequest, Strategy};
use reaper_serve::http;
use reaper_serve::json::Value;
use reaper_serve::{
    Client, ClientError, ConnectionModel, DeltaFetch, ProfileFetch, ProfileUpdate, Server,
    ServerConfig,
};
use reaper_retention::delta::ProfileDelta;

/// A job small enough to execute in well under a second on one core.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

fn poll() -> Duration {
    Duration::from_millis(10)
}

/// One plain request outside the `Client` surface, for malformed-query
/// cases the client cannot emit.
fn raw_get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let head = format!(
        "GET {target} HTTP/1.1\r\nhost: conformance\r\ncontent-length: 0\r\n\
         connection: close\r\n\r\n"
    );
    reader
        .get_mut()
        .write_all(head.as_bytes())
        .expect("send request");
    let resp = http::read_response(&mut reader).expect("parse response");
    (resp.status, resp.body)
}

/// Adds one fresh cell to an encoded profile, returning the next
/// snapshot's bytes (what a re-profiling pass would push).
fn churned(bytes: &[u8], fresh_cell: u64) -> Vec<u8> {
    let profile = FailureProfile::from_bytes(bytes).expect("served bytes decode");
    let mut cells: Vec<u64> = profile.iter().collect();
    assert!(!cells.contains(&fresh_cell), "pick an unused cell");
    cells.push(fresh_cell);
    FailureProfile::from_cells(cells).to_bytes()
}

fn expect_status(result: Result<impl std::fmt::Debug, ClientError>, want: u16) {
    match result {
        Err(ClientError::Status(code, _)) => assert_eq!(code, want, "wrong status"),
        other => panic!("expected HTTP {want}, got {other:?}"),
    }
}

/// The conditional-GET machine, delta reads, and the watch long-poll
/// against one server.
fn streaming_protocol_roundtrip(workers: usize, connection_model: ConnectionModel) {
    let server = Server::start(ServerConfig {
        workers,
        queue_capacity: 8,
        compact_max_deltas: 3,
        connection_model,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let mut client = Client::new(addr);

    let seed = 5050 + u64::try_from(workers).expect("small");
    let receipt = client.submit(&quick_request(seed)).expect("submit");
    let job = receipt.job_id.clone();
    let epoch0 = client
        .wait_for_profile(&job, poll(), 1500)
        .expect("job finishes");

    // --- Conditional GET: 200 → 304 → push → stale 304 misses → 200. ---
    let etag0 = match client.profile_conditional(&job, None).expect("fetch") {
        ProfileFetch::Fresh { bytes, etag } => {
            assert_eq!(bytes, epoch0, "unconditional GET serves the head");
            etag
        }
        other => panic!("expected fresh bytes, got {other:?}"),
    };
    match client
        .profile_conditional(&job, Some(&etag0))
        .expect("revalidate")
    {
        ProfileFetch::NotModified { etag } => assert_eq!(etag, etag0),
        other => panic!("expected 304, got {other:?}"),
    }

    // `since == head` → 304; `since > head` → 400; missing `since` → 400.
    assert!(matches!(
        client.delta_since(&job, 0).expect("delta at head"),
        DeltaFetch::NotModified { .. }
    ));
    expect_status(client.delta_since(&job, 99), 400);
    let (code, _) = raw_get(addr, &format!("/v1/profiles/{job}/delta"));
    assert_eq!(code, 400, "delta without since must 400");

    // --- Watch + pushes: subscriber sees each epoch as one RPD1 chunk. ---
    let watcher = std::thread::spawn({
        let job = job.clone();
        move || Client::new(addr).watch(&job, Some(0), 5_000, 2)
    });
    std::thread::sleep(Duration::from_millis(100));

    let epoch1 = churned(&epoch0, 0xBEE0);
    let push1 = client.push_epoch(&job, &epoch1).expect("push epoch 1");
    assert!(push1.changed && !push1.compacted && push1.epoch == 1);
    assert_ne!(push1.etag, etag0, "a changed push must move the ETag");
    assert!(push1.delta_bytes > 0);
    let epoch2 = churned(&epoch1, 0xBEE1);
    let push2 = client.push_epoch(&job, &epoch2).expect("push epoch 2");
    assert_eq!(push2.epoch, 2);

    let events = watcher
        .join()
        .expect("watcher thread")
        .expect("watch stream");
    assert_eq!(events.len(), 2, "one event per pushed epoch");
    let mut current = FailureProfile::from_bytes(&epoch0).expect("decodes");
    for event in &events {
        let ProfileUpdate::Delta(message) = event else {
            panic!("expected RPD1 events from a live watch, got {event:?}");
        };
        let delta = ProfileDelta::from_bytes(message).expect("event decodes");
        current = current.apply_delta(&delta).expect("applies in order");
    }
    assert_eq!(
        current.to_bytes(),
        epoch2,
        "watch events must replay to the pushed head"
    );

    // --- Stale ETag re-fetches; fresh ETag revalidates. ---
    let etag2 = match client
        .profile_conditional(&job, Some(&etag0))
        .expect("stale revalidate")
    {
        ProfileFetch::Fresh { bytes, etag } => {
            assert_eq!(bytes, epoch2, "stale ETag must yield the new head");
            assert_eq!(etag, push2.etag);
            etag
        }
        other => panic!("expected fresh bytes after pushes, got {other:?}"),
    };
    assert!(matches!(
        client.profile_conditional(&job, Some(&etag2)),
        Ok(ProfileFetch::NotModified { .. })
    ));

    // An unchanged push consumes no epoch and keeps the ETag.
    let noop = client.push_epoch(&job, &epoch2).expect("no-op push");
    assert!(!noop.changed);
    assert_eq!((noop.epoch, &noop.etag), (2, &etag2));

    // --- Delta chain from 0, then compaction forces the full fallback. ---
    match client.delta_since(&job, 0).expect("chain") {
        DeltaFetch::Chain { bytes, epoch, etag } => {
            assert_eq!((epoch, &etag), (2, &etag2));
            let chain = ProfileDelta::decode_chain(&bytes).expect("chain decodes");
            assert_eq!(chain.len(), 2);
            let mut current = FailureProfile::from_bytes(&epoch0).expect("decodes");
            for delta in &chain {
                current = current.apply_delta(delta).expect("applies");
            }
            assert_eq!(current.to_bytes(), epoch2);
        }
        other => panic!("expected a delta chain, got {other:?}"),
    }
    let epoch3 = churned(&epoch2, 0xBEE2);
    let push3 = client.push_epoch(&job, &epoch3).expect("push epoch 3");
    assert!(
        push3.compacted,
        "third delta must hit the compact_max_deltas=3 budget"
    );
    match client.delta_since(&job, 0).expect("fallback") {
        DeltaFetch::Full { bytes, epoch, .. } => {
            assert_eq!(epoch, 3);
            assert_eq!(bytes, epoch3, "fallback serves the head encoding");
        }
        other => panic!("expected full fallback after compaction, got {other:?}"),
    }
    assert!(matches!(
        client.delta_since(&job, 3).expect("delta at new head"),
        DeltaFetch::NotModified { .. }
    ));

    // --- Watch from a compacted-away epoch falls back to one RPF1. ---
    let events = client.watch(&job, Some(0), 500, 4).expect("watch stream");
    assert!(
        matches!(events.as_slice(), [ProfileUpdate::Full(bytes)] if *bytes == epoch3),
        "gap-spanning watch must resync with exactly one full snapshot"
    );

    // --- Error surfaces + metrics exposition. ---
    expect_status(client.watch("0000000000000000", None, 100, 1), 404);
    let (code, _) = raw_get(addr, "/v1/profiles/not-an-id/delta?since=0");
    assert_eq!(code, 400, "malformed IDs must 400");
    let metrics = client.metrics_text().expect("metrics page");
    for series in [
        "reaper_delta_pushes_total 4",
        "reaper_delta_chains_total",
        "reaper_delta_full_fallbacks_total",
        "reaper_not_modified_total",
        "reaper_watch_events_total 3",
        "reaper_store_resident_profiles 1",
        "reaper_store_chunk_entries",
        "reaper_cache_evictions_total 0",
    ] {
        assert!(metrics.contains(series), "missing {series}\n{metrics}");
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.delta_pushes, 4, "three changed pushes + one no-op");
    assert_eq!(snap.watch_events, 3);
    assert!(snap.not_modified >= 3);

    server.shutdown();
}

/// The evicted-then-resubmitted regression: a 304 must not require
/// resident bytes or a recompute, and a matching recompute reattaches
/// under the same ETag.
fn eviction_revalidation_regression(workers: usize, connection_model: ConnectionModel) {
    let (seed_a, seed_b) = (6060u64, 6061u64);
    let bytes_a = quick_request(seed_a)
        .execute()
        .expect("valid request")
        .run
        .profile
        .to_bytes();
    let bytes_b = quick_request(seed_b)
        .execute()
        .expect("valid request")
        .run
        .profile
        .to_bytes();
    // Each profile fits alone; the pair cannot both stay resident.
    let budget = bytes_a.len() + bytes_b.len() - 1;

    let server = Server::start(ServerConfig {
        workers,
        queue_capacity: 8,
        cache_budget_bytes: budget,
        connection_model,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(server.local_addr());

    let job_a = client.submit(&quick_request(seed_a)).expect("submit A").job_id;
    let served_a = client
        .wait_for_profile(&job_a, poll(), 1500)
        .expect("A finishes");
    assert_eq!(served_a, bytes_a);
    let etag_a = match client.profile_conditional(&job_a, None).expect("fetch A") {
        ProfileFetch::Fresh { etag, .. } => etag,
        other => panic!("expected fresh bytes, got {other:?}"),
    };

    // Completing B must evict A's bytes (A is colder).
    let job_b = client.submit(&quick_request(seed_b)).expect("submit B").job_id;
    client
        .wait_for_profile(&job_b, poll(), 1500)
        .expect("B finishes");
    expect_status(client.profile_bytes(&job_a), 410);
    let completed_before = server.metrics_snapshot().jobs_completed;

    // THE regression: a current ETag revalidates to 304 from metadata
    // alone — no resident bytes, no recompute.
    match client
        .profile_conditional(&job_a, Some(&etag_a))
        .expect("revalidate evicted A")
    {
        ProfileFetch::NotModified { etag } => assert_eq!(etag, etag_a),
        other => panic!("evicted + matching ETag must 304, got {other:?}"),
    }
    // The epoch cursor survives eviction too: since == head → 304.
    assert!(matches!(
        client.delta_since(&job_a, 0).expect("delta on evicted A"),
        DeltaFetch::NotModified { .. }
    ));
    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.jobs_completed, completed_before,
        "revalidation must not recompute"
    );
    let metrics = client.metrics_text().expect("metrics page");
    assert!(
        !metrics.contains("reaper_cache_evictions_total 0"),
        "the eviction must be counted\n{metrics}"
    );

    // Resubmission recomputes (deterministically) and reattaches: same
    // bytes, same ETag.
    let resubmit = client.submit(&quick_request(seed_a)).expect("resubmit A");
    assert_eq!(resubmit.job_id, job_a);
    let again = client
        .wait_for_profile(&job_a, poll(), 1500)
        .expect("A recomputes");
    assert_eq!(again, bytes_a, "reattached bytes must be bit-identical");
    assert!(matches!(
        client.profile_conditional(&job_a, Some(&etag_a)),
        Ok(ProfileFetch::NotModified { .. })
    ));

    server.shutdown();
}

/// The portfolio job kind end to end: submit with `"kind":"portfolio"`,
/// read back bytes bit-identical to an in-process race, dedup on
/// resubmission, the `kind`-tagged status document, and the
/// per-strategy `reaper_portfolio_*` counters in canonical label order.
fn portfolio_race_conformance(workers: usize, connection_model: ConnectionModel) {
    let request = PortfolioRequest::example(4242);
    // In-process reference: the race is a pure function of the request,
    // so the served bytes must match it at every worker count and under
    // both socket models.
    let (race, outcome) = request.execute().expect("valid request");
    let expected = outcome.run.profile.to_bytes();

    let server = Server::start(ServerConfig {
        workers,
        queue_capacity: 8,
        connection_model,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(server.local_addr());

    let receipt = client.submit_portfolio(&request).expect("submit portfolio");
    assert!(!receipt.deduped);
    let bytes = client
        .wait_for_profile(&receipt.job_id, poll(), 1500)
        .expect("race finishes");
    assert_eq!(
        bytes, expected,
        "served race profile must be bit-identical to an in-process run"
    );

    let status = client.job_status(&receipt.job_id).expect("status");
    assert_eq!(status.get("kind").and_then(Value::as_str), Some("portfolio"));
    let summary = status.get("summary").expect("done job has a summary");
    assert_eq!(
        summary.get("cells").and_then(Value::as_u64),
        Some(u64::try_from(race.profile.len()).expect("small"))
    );

    // Identical resubmission dedups to the same content-addressed ID.
    let again = client.submit_portfolio(&request).expect("resubmit");
    assert!(again.deduped);
    assert_eq!(again.job_id, receipt.job_id);

    // Per-strategy counters, with labels in Strategy::ALL order.
    let metrics = client.metrics_text().expect("metrics page");
    for series in [
        "reaper_portfolio_races_total{strategy=\"brute_force\"} 1",
        "reaper_portfolio_races_total{strategy=\"delta_refw\"} 2",
        "reaper_portfolio_races_total{strategy=\"delta_t\"} 2",
        "reaper_portfolio_races_total{strategy=\"combined\"} 2",
    ] {
        assert!(metrics.contains(series), "missing {series}\n{metrics}");
    }
    let winner_series = format!(
        "reaper_portfolio_winner_total{{strategy=\"{}\"}} 1",
        race.winner_strategy.name()
    );
    assert!(metrics.contains(&winner_series), "missing {winner_series}\n{metrics}");
    for strategy in Strategy::ALL {
        let cancelled = race
            .lanes
            .iter()
            .filter(|l| l.spec.strategy() == strategy && l.status == LaneStatus::Cancelled)
            .count();
        let series = format!(
            "reaper_portfolio_cancelled_total{{strategy=\"{}\"}} {cancelled}",
            strategy.name()
        );
        assert!(metrics.contains(&series), "missing {series}\n{metrics}");
    }
    let races_pos = metrics
        .find("reaper_portfolio_races_total")
        .expect("races family");
    let cancelled_pos = metrics
        .find("reaper_portfolio_cancelled_total")
        .expect("cancelled family");
    let winner_pos = metrics
        .find("reaper_portfolio_winner_total")
        .expect("winner family");
    assert!(
        races_pos < cancelled_pos && cancelled_pos < winner_pos,
        "portfolio families must render in a fixed order"
    );

    server.shutdown();
}

#[test]
fn streaming_endpoints_conform_at_one_and_four_workers() {
    // Both socket models must satisfy the identical protocol contract;
    // the event-loop variant only exists on unix.
    let mut models = vec![ConnectionModel::ThreadPerConnection { max_threads: 32 }];
    if cfg!(unix) {
        models.push(ConnectionModel::EventLoop {
            max_connections: 128,
        });
    }
    for model in models {
        for workers in [1usize, 4] {
            streaming_protocol_roundtrip(workers, model);
            eviction_revalidation_regression(workers, model);
            portfolio_race_conformance(workers, model);
        }
    }
}
