//! Compaction-equivalence property suite for the epoch-log store.
//!
//! The acceptance property from the ISSUE: decoding `base + deltas[..k]`
//! is **byte-identical** to the directly encoded full profile at epoch
//! `base_epoch + k`, for *every* prefix `k`, at *every* log state a
//! random churn sequence passes through — including the state right
//! after each compaction folds the chain into a new base. The checks
//! use the fully verified apply path (`FailureProfile::apply_delta`
//! checks `base_hash` and `result_hash`), so a store that served
//! correct bytes through a wrong hash would also fail here.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use reaper_core::FailureProfile;
use reaper_exec::rng::SplitMix64;
use reaper_retention::delta::ProfileDelta;
use reaper_serve::store::{DeltaQuery, InsertOutcome, ProfileStore, StoreConfig};

/// Replays the log for `id` against the externally tracked history:
/// the base must equal `history[base_epoch]` byte-for-byte, and every
/// chain prefix must land exactly on the history entry for its epoch.
fn assert_every_prefix_matches(store: &ProfileStore, id: u64, history: &BTreeMap<u64, Vec<u8>>) {
    let (base_epoch, base, chain) = store.log_snapshot(id).expect("log exists");
    let base = base.expect("resident in these runs");
    assert_eq!(
        *base,
        *history.get(&base_epoch).expect("base epoch was recorded"),
        "base snapshot diverged from the directly encoded epoch {base_epoch}"
    );
    let mut current = FailureProfile::from_bytes(&base).expect("base decodes");
    let mut epoch = base_epoch;
    for message in &chain {
        let delta = ProfileDelta::from_bytes(message).expect("chain record decodes");
        assert_eq!(delta.base_epoch, epoch, "chain must be consecutive");
        current = current
            .apply_delta(&delta)
            .expect("hash-verified apply succeeds in order");
        epoch = delta.new_epoch;
        assert_eq!(
            current.to_bytes(),
            *history.get(&epoch).expect("epoch was recorded"),
            "prefix ending at epoch {epoch} is not byte-identical"
        );
    }
}

/// One deterministic churn step: add a few fresh cells, remove a few
/// existing ones.
fn churn(cells: &mut BTreeSet<u64>, rng: &mut SplitMix64) {
    let adds = 1 + rng.next_u64() % 3;
    for _ in 0..adds {
        cells.insert(rng.next_u64() % 100_000);
    }
    let removes = rng.next_u64() % 3;
    for _ in 0..removes {
        let Some(&victim) = cells.iter().nth((rng.next_u64() % 7) as usize % cells.len().max(1))
        else {
            break;
        };
        cells.remove(&victim);
    }
}

proptest! {
    /// The headline property: byte-identical prefix decode at every
    /// intermediate state of a random churn sequence, across varying
    /// compaction budgets.
    #[test]
    fn every_prefix_of_every_log_state_is_byte_identical(
        seed in any::<u64>(),
        epochs in 1usize..20,
        compact_max_deltas in 2usize..6,
    ) {
        let mut store = ProfileStore::new(StoreConfig {
            budget_bytes: 1 << 20,
            compact_max_deltas,
            compact_max_chain_bytes: 1 << 16,
        });
        let mut rng = SplitMix64::new(seed);
        let mut cells: BTreeSet<u64> = (0..8).map(|_| rng.next_u64() % 100_000).collect();
        let p0 = FailureProfile::from_cells(cells.iter().copied());
        let mut history = BTreeMap::new();
        history.insert(0u64, p0.to_bytes());
        prop_assert_eq!(store.insert_full(1, Arc::new(p0.to_bytes())), InsertOutcome::Created);
        assert_every_prefix_matches(&store, 1, &history);

        let mut saw_compaction = false;
        for _ in 0..epochs {
            churn(&mut cells, &mut rng);
            let next = FailureProfile::from_cells(cells.iter().copied());
            let out = store.append_full(1, &next).expect("append");
            history.insert(out.epoch, next.to_bytes());
            saw_compaction |= out.compacted;
            if out.compacted {
                // Right after compaction the chain is empty and the new
                // base IS the head — the strongest prefix case.
                let (base_epoch, _, chain) = store.log_snapshot(1).expect("log");
                prop_assert_eq!(base_epoch, out.epoch);
                prop_assert!(chain.is_empty());
            }
            assert_every_prefix_matches(&store, 1, &history);
        }
        // With a small epoch budget and enough pushes, compaction must
        // actually have been exercised (guards against a vacuous pass).
        if epochs >= compact_max_deltas * 2 {
            prop_assert!(saw_compaction, "budget {compact_max_deltas} never compacted");
        }
    }

    /// `updates_since` agrees with the history at every `since` point:
    /// a chain lands on the head byte-identically; a fallback serves
    /// the head encoding directly.
    #[test]
    fn updates_since_reconstruct_the_head_from_any_epoch(
        seed in any::<u64>(),
        epochs in 2usize..16,
    ) {
        let mut store = ProfileStore::new(StoreConfig {
            budget_bytes: 1 << 20,
            compact_max_deltas: 4,
            compact_max_chain_bytes: 1 << 16,
        });
        let mut rng = SplitMix64::new(seed);
        let mut cells: BTreeSet<u64> = (0..6).map(|_| rng.next_u64() % 50_000).collect();
        let p0 = FailureProfile::from_cells(cells.iter().copied());
        let mut history = BTreeMap::new();
        history.insert(0u64, p0.to_bytes());
        store.insert_full(1, Arc::new(p0.to_bytes()));
        for _ in 0..epochs {
            churn(&mut cells, &mut rng);
            let next = FailureProfile::from_cells(cells.iter().copied());
            let out = store.append_full(1, &next).expect("append");
            history.insert(out.epoch, next.to_bytes());
        }
        let head_epoch = *history.keys().next_back().expect("nonempty");
        let head_bytes = history.get(&head_epoch).expect("head").clone();

        for &since in history.keys() {
            match store.updates_since(1, since) {
                DeltaQuery::NotModified => prop_assert_eq!(since, head_epoch),
                DeltaQuery::Chain { head_epoch: h, messages } => {
                    prop_assert_eq!(h, head_epoch);
                    let mut current = FailureProfile::from_bytes(
                        history.get(&since).expect("since recorded"),
                    )
                    .expect("decodes");
                    for message in &messages {
                        let d = ProfileDelta::from_bytes(message).expect("decodes");
                        current = current.apply_delta(&d).expect("applies in order");
                    }
                    prop_assert_eq!(current.to_bytes(), head_bytes.clone());
                }
                DeltaQuery::FullFallback { head_epoch: h, bytes } => {
                    prop_assert_eq!(h, head_epoch);
                    prop_assert_eq!((*bytes).clone(), head_bytes.clone());
                    // Fallback only happens once compaction folded
                    // `since` away.
                    let (base_epoch, _, _) = store.log_snapshot(1).expect("log");
                    prop_assert!(since < base_epoch);
                }
                DeltaQuery::Unknown | DeltaQuery::AheadOfHead | DeltaQuery::Evicted => {
                    prop_assert!(false, "unexpected variant for since={}", since);
                }
            }
        }
    }

    /// Chunk accounting holds under churn shared across two logs:
    /// `used_bytes` decomposes into snapshots + chunks, and identical
    /// churn stores its payload once.
    #[test]
    fn shared_churn_keeps_accounting_and_dedups(
        seed in any::<u64>(),
        epochs in 1usize..10,
    ) {
        let mut store = ProfileStore::new(StoreConfig {
            budget_bytes: 1 << 20,
            compact_max_deltas: 64, // keep chains alive to count chunks
            compact_max_chain_bytes: 1 << 20,
        });
        let mut rng = SplitMix64::new(seed);
        // Two disjoint profiles that will churn identically.
        let a0: BTreeSet<u64> = (0..5).map(|_| rng.next_u64() % 1_000).collect();
        let b0: BTreeSet<u64> = a0.iter().map(|c| c + 1_000_000).collect();
        let mut a = a0;
        store.insert_full(1, Arc::new(FailureProfile::from_cells(a.iter().copied()).to_bytes()));
        let mut b_shifted = b0;
        store.insert_full(
            2,
            Arc::new(FailureProfile::from_cells(b_shifted.iter().copied()).to_bytes()),
        );

        let mut dedup_hits = 0u64;
        for _ in 0..epochs {
            // Apply the SAME added cells to both (fresh range, so the
            // payloads match exactly: added=new cells, removed=[]).
            let fresh: BTreeSet<u64> =
                (0..3).map(|_| 2_000_000 + rng.next_u64() % 10_000).collect();
            let before = a.len();
            a.extend(fresh.iter().copied());
            b_shifted.extend(fresh.iter().copied());
            if a.len() == before {
                continue; // collision-only step: no churn on either log
            }
            let oa = store
                .append_full(1, &FailureProfile::from_cells(a.iter().copied()))
                .expect("append");
            let ob = store
                .append_full(2, &FailureProfile::from_cells(b_shifted.iter().copied()))
                .expect("append");
            prop_assert_eq!(oa.chunk_id, ob.chunk_id);
            prop_assert!(ob.chunk_deduped);
            dedup_hits += 1;
        }
        prop_assert_eq!(store.chunk_dedup_hits(), dedup_hits);
        prop_assert!(store.used_bytes() <= store.budget_bytes());
        prop_assert_eq!(store.len(), 2);
        prop_assert_eq!(store.resident_count(), 2);
    }
}
