//! End-to-end smoke test for `reaper-serve`: dedup of concurrent
//! identical submissions, content-addressed job IDs, and bit-identical
//! profile bytes between the service and a direct library call — at
//! more than one worker count.
//!
//! Everything lives in ONE `#[test]` because
//! `reaper_exec::set_thread_count` is process-global and cargo runs the
//! `#[test]` fns of one binary concurrently.

// Test code may panic on failure; clippy's in-tests knobs do not cover
// non-`#[test]` helper fns in integration-test binaries.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::time::Duration;

use reaper_core::ProfilingRequest;
use reaper_serve::{Client, Server, ServerConfig};

/// A job small enough to execute in well under a second on one core.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

fn start_server(workers: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn poll() -> Duration {
    Duration::from_millis(10)
}

#[test]
fn service_is_deterministic_deduplicating_and_drains_cleanly() {
    let request = quick_request(1717);

    // Ground truth: the direct library call is itself thread-count
    // invariant, so the service has a fixed target to match.
    reaper_exec::set_thread_count(Some(1));
    let direct_at_one = request.execute().expect("valid request").run.profile;
    reaper_exec::set_thread_count(Some(4));
    let direct_at_four = request.execute().expect("valid request").run.profile;
    reaper_exec::set_thread_count(None);
    let direct_bytes = direct_at_one.to_bytes();
    assert_eq!(
        direct_bytes,
        direct_at_four.to_bytes(),
        "library execution must be bit-identical at any thread count"
    );
    assert!(!direct_at_one.is_empty());

    // --- Single-worker server: concurrent identical submissions. ---
    let server = start_server(1);
    let addr = server.local_addr();

    let mut health_client = Client::new(addr);
    assert!(health_client.healthz().expect("healthz responds"));

    // Two clients race to submit the same canonical request.
    let (receipt_a, receipt_b) = std::thread::scope(|scope| {
        let ra = scope.spawn(|| Client::new(addr).submit(&quick_request(1717)));
        let rb = scope.spawn(|| Client::new(addr).submit(&quick_request(1717)));
        (
            ra.join().expect("no panic").expect("submit a"),
            rb.join().expect("no panic").expect("submit b"),
        )
    });
    assert_eq!(
        receipt_a.job_id, receipt_b.job_id,
        "identical requests must content-address to the same job ID"
    );
    assert_eq!(
        receipt_a.job_id,
        ProfilingRequest::format_job_id(request.job_id()),
        "wire job ID must be the canonical request hash"
    );
    assert_eq!(
        u8::from(receipt_a.deduped) + u8::from(receipt_b.deduped),
        1,
        "exactly one of two racing submissions must be deduplicated"
    );

    let job_id = receipt_a.job_id.clone();
    let served = health_client
        .wait_for_profile(&job_id, poll(), 1500)
        .expect("job finishes");
    assert_eq!(
        served, direct_bytes,
        "served profile must be bit-identical to the direct library call"
    );

    let snap = server.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, 1, "one execution for two submissions");
    assert_eq!(snap.jobs_deduped, 1);
    assert_eq!(snap.jobs_completed, 1);
    assert_eq!(snap.jobs_failed, 0);
    assert!(snap.cache_hits >= 1);

    // Resubmission after completion: answered from the record, no rerun.
    let resubmit = health_client.submit(&quick_request(1717)).expect("resubmit");
    assert!(resubmit.deduped);
    assert_eq!(resubmit.status, "done");
    let again = health_client
        .profile_bytes(&job_id)
        .expect("profile readable")
        .expect("already done");
    assert_eq!(again, direct_bytes);
    let snap = server.metrics_snapshot();
    assert_eq!(snap.jobs_completed, 1, "resubmission must not recompute");
    assert_eq!(snap.jobs_deduped, 2);

    // Status document and JSON profile variant.
    let status = health_client.job_status(&job_id).expect("status");
    assert_eq!(
        status.get("status").and_then(|v| v.as_str()),
        Some("done")
    );
    let summary = status.get("summary").expect("done jobs carry a summary");
    assert_eq!(
        summary.get("cells").and_then(|v| v.as_u64()),
        Some(direct_at_one.len() as u64)
    );
    assert_eq!(
        summary.get("profile_bytes").and_then(|v| v.as_u64()),
        Some(direct_bytes.len() as u64)
    );

    // Error surfaces: unknown job, malformed ID, invalid body.
    let missing = health_client.job_status("0000000000000000");
    assert!(missing.is_err(), "unknown job must 404");
    let malformed = health_client.profile_bytes("nope");
    assert!(malformed.is_err(), "short IDs must be rejected");
    let mut invalid = quick_request(1);
    invalid.rounds = 0;
    assert!(
        health_client.submit(&invalid).is_err(),
        "invalid requests must be rejected at submission"
    );

    // Metrics exposition names every required series.
    let metrics = health_client.metrics_text().expect("metrics page");
    for series in [
        "reaper_jobs_submitted_total 1",
        "reaper_jobs_completed_total 1",
        "reaper_jobs_deduped_total 2",
        "reaper_cache_hits_total",
        "reaper_cache_misses_total",
        "reaper_cache_evictions_total",
        "reaper_queue_depth",
        "reaper_queue_wait_microseconds_count 1",
        "reaper_exec_microseconds_count 1",
    ] {
        assert!(metrics.contains(series), "missing {series}\n{metrics}");
    }

    server.shutdown();

    // --- Four-worker server: distinct jobs complete; bytes still match. ---
    let server = start_server(4);
    let mut client = Client::new(server.local_addr());
    let seeds = [1717u64, 2020, 3030];
    let ids: Vec<String> = seeds
        .iter()
        .map(|&s| client.submit(&quick_request(s)).expect("submit").job_id)
        .collect();
    for (seed, id) in seeds.iter().zip(&ids) {
        let served = client
            .wait_for_profile(id, poll(), 1500)
            .expect("job finishes");
        let direct = quick_request(*seed)
            .execute()
            .expect("valid request")
            .run
            .profile
            .to_bytes();
        assert_eq!(
            served, direct,
            "seed {seed}: served bytes must match the direct call at 4 workers"
        );
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, 3);
    assert_eq!(snap.jobs_completed, 3);
    assert_eq!(snap.jobs_failed, 0);

    // Graceful shutdown with an already-drained queue.
    server.shutdown();
}
