//! The command-level test harness: Algorithm 1's inner loop with honest
//! time accounting.

use reaper_dram_model::{Celsius, DataPattern, Ms};
use reaper_retention::{SimulatedChip, TrialOutcome};

use crate::log::{Command, CommandLog};
use crate::thermal::ThermalChamber;

/// Latency accounting for harness operations.
///
/// The paper measures "slightly less than 250 ms" to read/write data to all
/// DRAM channels and check for errors (§6.1.1), i.e. ≈125 ms per direction
/// for the characterized 2 GB module; the §7.3.1 overhead model (Eq. 9)
/// scales this with DRAM size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time to write one data pattern across the module.
    pub write_pass: Ms,
    /// Time to read the module back and compare against the pattern.
    pub read_pass: Ms,
}

impl CostModel {
    /// The paper's measured costs for the characterized 2 GB module.
    pub fn paper_default() -> Self {
        Self {
            write_pass: Ms::new(125.0),
            read_pass: Ms::new(125.0),
        }
    }

    /// Scales the pass costs linearly with module capacity relative to the
    /// characterized 2 GB module (the paper scales this number "according
    /// to DRAM size", §7.3.1 footnote).
    pub fn scaled_to_bytes(module_bytes: u64) -> Self {
        let scale = module_bytes as f64 / (2.0 * (1u64 << 30) as f64);
        Self {
            write_pass: Ms::new(125.0 * scale),
            read_pass: Ms::new(125.0 * scale),
        }
    }

    /// Combined read+write cost of one pattern pass.
    pub fn pass_cost(&self) -> Ms {
        self.write_pass + self.read_pass
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A SoftMC-style test harness wrapping one simulated chip inside a thermal
/// chamber, with a simulated wall clock.
///
/// The harness exposes the exact primitive sequence of the paper's
/// Algorithm 1 — [`write_pattern`](TestHarness::write_pattern),
/// [`wait_with_refresh_disabled`](TestHarness::wait_with_refresh_disabled),
/// [`read_and_compare`](TestHarness::read_and_compare) — plus the fused
/// [`pattern_trial`](TestHarness::pattern_trial) convenience.
#[derive(Debug, Clone)]
pub struct TestHarness {
    chip: SimulatedChip,
    chamber: ThermalChamber,
    costs: CostModel,
    pending_pattern: Option<DataPattern>,
    pending_wait: Ms,
    elapsed: Ms,
    log: CommandLog,
}

impl TestHarness {
    /// Creates a harness around `chip`, settles the chamber at
    /// `ambient` (charging the settling time), deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `ambient` is outside the chamber's reliable range.
    pub fn new(chip: SimulatedChip, ambient: Celsius, seed: u64) -> Self {
        Self::with_costs(chip, ambient, seed, CostModel::default())
    }

    /// Like [`TestHarness::new`] with an explicit cost model.
    pub fn with_costs(
        chip: SimulatedChip,
        ambient: Celsius,
        seed: u64,
        costs: CostModel,
    ) -> Self {
        let mut chamber = ThermalChamber::new(ambient, seed ^ 0x7EA9);
        let settle = chamber.settle();
        let mut harness = Self {
            chip,
            chamber,
            costs,
            pending_pattern: None,
            pending_wait: Ms::ZERO,
            elapsed: Ms::ZERO,
            log: CommandLog::default(),
        };
        harness.charge(settle);
        harness
    }

    fn charge(&mut self, dt: Ms) {
        self.elapsed += dt;
        self.chip.advance(dt);
    }

    /// Total simulated wall-clock time consumed so far (profiling runtime).
    pub fn elapsed(&self) -> Ms {
        self.elapsed
    }

    /// The wrapped chip.
    pub fn chip(&self) -> &SimulatedChip {
        &self.chip
    }

    /// Mutable access to the wrapped chip (e.g. for ground-truth queries
    /// that need `&mut`, or direct trials in tests).
    pub fn chip_mut(&mut self) -> &mut SimulatedChip {
        &mut self.chip
    }

    /// Consumes the harness, returning the chip.
    pub fn into_chip(self) -> SimulatedChip {
        self.chip
    }

    /// The cost model in use.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// The command log — the simulated logic analyzer (paper §4).
    pub fn command_log(&self) -> &CommandLog {
        &self.log
    }

    /// Current DRAM temperature (ambient + 15 °C offset, with jitter).
    pub fn dram_temperature(&mut self) -> Celsius {
        self.chamber.dram_temperature()
    }

    /// Current chamber ambient setpoint.
    pub fn ambient_setpoint(&self) -> Celsius {
        self.chamber.setpoint()
    }

    /// Moves the chamber to a new ambient temperature and waits for it to
    /// settle, charging the settling time.
    ///
    /// # Panics
    /// Panics if `ambient` is outside the chamber's reliable range.
    pub fn set_ambient(&mut self, ambient: Celsius) {
        self.log.record(self.elapsed, Command::SetAmbient(ambient));
        self.chamber.set_setpoint(ambient);
        let settle = self.chamber.settle();
        self.charge(settle);
    }

    /// Advances simulated wall-clock time without issuing DRAM commands
    /// (models system idle periods between online profiling rounds).
    pub fn idle(&mut self, dt: Ms) {
        self.log.record(self.elapsed, Command::Idle(dt));
        self.charge(dt);
    }

    /// Algorithm 1, line 5: writes `pattern` across the module. Charges the
    /// write-pass cost.
    pub fn write_pattern(&mut self, pattern: DataPattern) {
        self.log.record(self.elapsed, Command::WritePattern(pattern));
        self.charge(self.costs.write_pass);
        self.pending_pattern = Some(pattern);
    }

    /// Algorithm 1, lines 6–8: disables refresh, waits `interval`, and
    /// re-enables refresh. Charges `interval`.
    ///
    /// # Panics
    /// Panics if no pattern has been written, or `interval` is not positive.
    pub fn wait_with_refresh_disabled(&mut self, interval: Ms) {
        assert!(
            self.pending_pattern.is_some(),
            "write a data pattern before disabling refresh"
        );
        assert!(interval.is_positive(), "interval must be positive");
        self.log.record(self.elapsed, Command::DisableRefresh);
        self.log.record(self.elapsed, Command::Wait(interval));
        self.charge(interval);
        self.log.record(self.elapsed, Command::EnableRefresh);
        self.pending_wait = interval;
    }

    /// Algorithm 1, line 9: reads the module back and returns the cells
    /// whose contents differ from the written pattern. Charges the
    /// read-pass cost.
    ///
    /// # Panics
    /// Panics if the write/wait sequence was not performed first.
    pub fn read_and_compare(&mut self) -> TrialOutcome {
        let pattern = self
            .pending_pattern
            .take()
            // lint: allow(panic) documented `# Panics` contract of the command sequence
            .expect("write a data pattern before reading back");
        let interval = self.pending_wait;
        assert!(
            interval.is_positive(),
            "disable refresh and wait before reading back"
        );
        self.pending_wait = Ms::ZERO;
        self.log.record(self.elapsed, Command::ReadCompare);
        self.charge(self.costs.read_pass);
        let temp = self.chamber.dram_temperature();
        self.chip.retention_trial(pattern, interval, temp)
    }

    /// Fused write → wait → read-compare cycle for one data pattern:
    /// exactly one inner-loop step of Algorithm 1. Total charged time is
    /// `interval + pass_cost`.
    pub fn pattern_trial(&mut self, pattern: DataPattern, interval: Ms) -> TrialOutcome {
        self.write_pattern(pattern);
        self.wait_with_refresh_disabled(interval);
        self.read_and_compare()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Vendor;
    use reaper_retention::RetentionConfig;

    fn harness() -> TestHarness {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
            11,
        );
        TestHarness::new(chip, Celsius::new(45.0), 11)
    }

    #[test]
    fn pattern_trial_charges_interval_plus_pass() {
        let mut h = harness();
        let before = h.elapsed();
        let _ = h.pattern_trial(DataPattern::checkerboard(), Ms::new(1024.0));
        let dt = h.elapsed() - before;
        assert_eq!(dt, Ms::new(1024.0) + h.costs().pass_cost());
    }

    #[test]
    fn settling_time_is_charged_at_construction() {
        let h = harness();
        assert!(h.elapsed().as_secs() > 10.0, "elapsed {}", h.elapsed());
    }

    #[test]
    fn primitive_sequence_matches_fused_call() {
        let mut a = harness();
        let mut b = harness();
        let p = DataPattern::row_stripe();
        let fused = a.pattern_trial(p, Ms::new(2048.0));
        b.write_pattern(p);
        b.wait_with_refresh_disabled(Ms::new(2048.0));
        let manual = b.read_and_compare();
        assert_eq!(fused, manual);
        assert_eq!(a.elapsed(), b.elapsed());
    }

    #[test]
    #[should_panic(expected = "before disabling refresh")]
    fn wait_requires_written_pattern() {
        let mut h = harness();
        h.wait_with_refresh_disabled(Ms::new(64.0));
    }

    #[test]
    #[should_panic(expected = "before reading back")]
    fn read_requires_write() {
        let mut h = harness();
        h.read_and_compare();
    }

    #[test]
    #[should_panic(expected = "wait before reading back")]
    fn read_requires_wait() {
        let mut h = harness();
        h.write_pattern(DataPattern::solid0());
        h.read_and_compare();
    }

    #[test]
    fn ambient_change_charges_time_and_moves_dram_temp() {
        let mut h = harness();
        let before = h.elapsed();
        h.set_ambient(Celsius::new(55.0));
        assert!(h.elapsed() > before);
        let d = h.dram_temperature().degrees();
        assert!((d - 70.0).abs() < 0.6, "dram temp {d}");
        assert_eq!(h.ambient_setpoint(), Celsius::new(55.0));
    }

    #[test]
    fn idle_advances_chip_clock() {
        let mut h = harness();
        let t0 = h.chip().now();
        h.idle(Ms::from_hours(1.0));
        assert_eq!(h.chip().now() - t0, Ms::from_hours(1.0));
    }

    #[test]
    fn command_log_captures_algorithm1_sequence() {
        let mut h = harness();
        let _ = h.pattern_trial(DataPattern::solid0(), Ms::new(512.0));
        let log = h.command_log();
        assert!(log.tail_is_algorithm1_trial());
        assert!(log.timestamps_are_monotone());
        assert_eq!(log.total_recorded(), 5);
        h.idle(Ms::new(100.0));
        assert_eq!(h.command_log().total_recorded(), 6);
    }

    #[test]
    fn cost_model_scales_with_capacity() {
        let c = CostModel::scaled_to_bytes(4 * (1u64 << 30));
        assert_eq!(c.write_pass, Ms::new(250.0));
        assert_eq!(c.pass_cost(), Ms::new(500.0));
        assert_eq!(CostModel::default().pass_cost(), Ms::new(250.0));
    }

    #[test]
    fn into_chip_returns_ownership() {
        let h = harness();
        let elapsed = h.elapsed();
        let chip = h.into_chip();
        assert_eq!(chip.now(), elapsed);
    }
}
