//! SoftMC-style DRAM testing infrastructure, simulated.
//!
//! The paper's experiments run on an FPGA memory-controller platform
//! (SoftMC [Hassan+ HPCA'17]) inside a thermally controlled chamber
//! (§4: PID-regulated to ±0.25 °C over a reliable 40–55 °C range, with the
//! DRAM held 15 °C above ambient by a local heater). This crate reproduces
//! that *test environment* over the simulated chips of `reaper-retention`:
//!
//! * [`ThermalChamber`] — a discrete-time PID temperature control loop with
//!   sensor noise and a DRAM-local offset,
//! * [`TestHarness`] — the command-level write-pattern / disable-refresh /
//!   wait / read-compare cycle of the paper's Algorithm 1, with a simulated
//!   wall clock that charges realistic pass costs (≈250 ms per full-module
//!   write+read pass, §6.1.1),
//! * [`CostModel`] — the latency accounting knobs.
//!
//! # Example
//!
//! ```
//! use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
//! use reaper_retention::{RetentionConfig, SimulatedChip};
//! use reaper_softmc::TestHarness;
//!
//! let chip = SimulatedChip::new(
//!     RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
//!     7,
//! );
//! let mut harness = TestHarness::new(chip, Celsius::new(45.0), 7);
//!
//! // One Algorithm-1 inner step: write, wait with refresh off, read back.
//! let fails = harness.pattern_trial(DataPattern::checkerboard(), Ms::new(1024.0));
//! println!("{} failures, elapsed {}", fails.len(), harness.elapsed());
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing)]

pub mod harness;
pub mod log;
pub mod thermal;

pub use harness::{CostModel, TestHarness};
pub use log::{Command, CommandLog, LogEntry};
pub use thermal::{settle_cost, ThermalChamber};
