//! Command logging — the simulated counterpart of the paper's
//! logic-analyzer verification ("we verified \[precise control over DRAM
//! commands\] via a logic analyzer by probing the DRAM command bus", §4).
//!
//! The harness records every high-level operation with its simulated
//! timestamp; tests assert the exact Algorithm-1 sequence was issued.

use reaper_dram_model::{Celsius, DataPattern, Ms};
use std::collections::VecDeque;

/// One logged harness operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// A data pattern was written across the module.
    WritePattern(DataPattern),
    /// Refresh was disabled.
    DisableRefresh,
    /// The harness waited with refresh disabled.
    Wait(Ms),
    /// Refresh was re-enabled.
    EnableRefresh,
    /// The module was read back and compared.
    ReadCompare,
    /// The chamber was moved to a new ambient setpoint.
    SetAmbient(Celsius),
    /// The harness idled (no DRAM commands).
    Idle(Ms),
}

/// A timestamped command record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogEntry {
    /// Harness-elapsed time when the command was issued.
    pub at: Ms,
    /// The command.
    pub command: Command,
}

/// A bounded command log (oldest entries are dropped beyond capacity).
#[derive(Debug, Clone)]
pub struct CommandLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    total_recorded: u64,
}

impl CommandLog {
    /// Creates a log holding up to `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be nonzero");
        Self {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records a command at the given harness time.
    pub fn record(&mut self, at: Ms, command: Command) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry { at, command });
        self.total_recorded += 1;
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total commands ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Clears the retained entries (the running total is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Verifies that the most recent pattern trial followed Algorithm 1's
    /// command order: write → disable refresh → wait → enable refresh →
    /// read-compare. Returns false if the tail does not end with a complete
    /// trial.
    pub fn tail_is_algorithm1_trial(&self) -> bool {
        let n = self.entries.len();
        if n < 5 {
            return false;
        }
        let tail: Vec<&LogEntry> = self.entries.iter().skip(n - 5).collect();
        matches!(
            (
                &tail[0].command,
                &tail[1].command,
                &tail[2].command,
                &tail[3].command,
                &tail[4].command,
            ),
            (
                Command::WritePattern(_),
                Command::DisableRefresh,
                Command::Wait(_),
                Command::EnableRefresh,
                Command::ReadCompare,
            )
        )
    }

    /// Timestamps must be nondecreasing — the logic-analyzer sanity check.
    pub fn timestamps_are_monotone(&self) -> bool {
        self.entries
            .iter()
            .zip(self.entries.iter().skip(1))
            .all(|(a, b)| a.at <= b.at)
    }
}

impl Default for CommandLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_caps() {
        let mut log = CommandLog::new(3);
        for i in 0..5u64 {
            log.record(Ms::new(i as f64), Command::DisableRefresh);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        let first = log.entries().next().unwrap();
        assert_eq!(first.at, Ms::new(2.0)); // oldest two dropped
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn algorithm1_tail_detection() {
        let mut log = CommandLog::default();
        assert!(!log.tail_is_algorithm1_trial());
        log.record(Ms::new(0.0), Command::WritePattern(DataPattern::solid0()));
        log.record(Ms::new(1.0), Command::DisableRefresh);
        log.record(Ms::new(1.0), Command::Wait(Ms::new(64.0)));
        log.record(Ms::new(65.0), Command::EnableRefresh);
        log.record(Ms::new(65.0), Command::ReadCompare);
        assert!(log.tail_is_algorithm1_trial());
        assert!(log.timestamps_are_monotone());
        log.record(Ms::new(66.0), Command::Idle(Ms::new(5.0)));
        assert!(!log.tail_is_algorithm1_trial());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        CommandLog::new(0);
    }
}
