//! PID-controlled thermal chamber model.
//!
//! The paper (§4): "ambient temperature is maintained using heaters and fans
//! controlled via a microcontroller-based PID loop to within an accuracy of
//! 0.25 °C, with a reliable range of 40 °C to 55 °C. DRAM temperature is
//! held at 15 °C above ambient using a separate local heating source."
//!
//! The chamber is a first-order thermal plant driven by a discrete-time PID
//! controller with measurement noise; it reproduces both the settling
//! dynamics (so temperature changes cost simulated time) and the ±0.25 °C
//! jitter the paper cites as a source of contour noise (§6.1.1 fn. 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reaper_dram_model::{Celsius, Ms};

/// Lower edge of the chamber's reliable control range.
pub const CHAMBER_MIN: f64 = 40.0;
/// Upper edge of the chamber's reliable control range.
pub const CHAMBER_MAX: f64 = 55.0;
/// DRAM-local heater offset above ambient.
pub const DRAM_OFFSET: f64 = 15.0;
/// Control accuracy the chamber is expected to hold.
pub const ACCURACY: f64 = 0.25;

/// A PID-regulated thermal chamber with a DRAM-local heater.
#[derive(Debug, Clone)]
pub struct ThermalChamber {
    setpoint: f64,
    ambient: f64,
    integral: f64,
    prev_error: f64,
    rng: StdRng,
    // Plant parameters.
    heater_gain: f64,
    loss_coeff: f64,
    env_temp: f64,
    // PID gains.
    kp: f64,
    ki: f64,
    kd: f64,
}

impl ThermalChamber {
    /// Creates a chamber at thermal equilibrium with the lab (25 °C) and a
    /// setpoint of `setpoint`, deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `setpoint` is outside the reliable 40–55 °C range.
    pub fn new(setpoint: Celsius, seed: u64) -> Self {
        let mut chamber = Self {
            setpoint: 0.0,
            ambient: 25.0,
            integral: 0.0,
            prev_error: 0.0,
            rng: StdRng::seed_from_u64(seed),
            heater_gain: 0.8,
            loss_coeff: 0.02,
            env_temp: 25.0,
            kp: 0.6,
            ki: 0.02,
            kd: 0.8,
        };
        chamber.set_setpoint(setpoint);
        chamber
    }

    /// Changes the target ambient temperature.
    ///
    /// # Panics
    /// Panics if `setpoint` is outside the reliable 40–55 °C range.
    pub fn set_setpoint(&mut self, setpoint: Celsius) {
        let s = setpoint.degrees();
        assert!(
            (CHAMBER_MIN..=CHAMBER_MAX).contains(&s),
            "setpoint {s}°C outside reliable range {CHAMBER_MIN}–{CHAMBER_MAX}°C"
        );
        self.setpoint = s;
        self.integral = 0.0;
    }

    /// Current setpoint.
    pub fn setpoint(&self) -> Celsius {
        Celsius::new(self.setpoint)
    }

    /// Current true ambient temperature.
    pub fn ambient(&self) -> Celsius {
        Celsius::new(self.ambient)
    }

    /// DRAM temperature: ambient + 15 °C local-heater offset, with a small
    /// smoothed jitter from self-heating (±0.1 °C).
    pub fn dram_temperature(&mut self) -> Celsius {
        let jitter = (self.rng.random::<f64>() - 0.5) * 0.2;
        Celsius::new(self.ambient + DRAM_OFFSET + jitter)
    }

    /// Advances the plant and controller by one 1-second step.
    pub fn step(&mut self) {
        // Sensor with ±0.1 °C noise; the loop holds ±0.25 °C overall.
        let measured = self.ambient + (self.rng.random::<f64>() - 0.5) * 0.2;
        let error = self.setpoint - measured;
        self.integral = (self.integral + error).clamp(-50.0, 50.0);
        let derivative = error - self.prev_error;
        self.prev_error = error;
        let power = (self.kp * error + self.ki * self.integral + self.kd * derivative)
            .clamp(0.0, 1.0);
        // First-order plant: heater input vs. loss to the environment.
        self.ambient += self.heater_gain * power - self.loss_coeff * (self.ambient - self.env_temp);
    }

    /// Runs the control loop until the ambient has been within the chamber's
    /// ±0.25 °C accuracy band for 30 consecutive seconds. Returns the
    /// settling time.
    ///
    /// # Panics
    /// Panics if the loop fails to settle within 4 simulated hours (a
    /// controller-tuning bug, not a runtime condition).
    pub fn settle(&mut self) -> Ms {
        let mut in_band = 0u32;
        for secs in 0..(4 * 3600) {
            if (self.ambient - self.setpoint).abs() <= ACCURACY {
                in_band += 1;
                if in_band >= 30 {
                    return Ms::from_secs(secs as f64 + 1.0);
                }
            } else {
                in_band = 0;
            }
            self.step();
        }
        // lint: allow(panic) documented `# Panics`: the PI controller settles within 4h by construction
        panic!("thermal chamber failed to settle at {}°C", self.setpoint);
    }
}

/// Logical settling cost of moving a chamber from one setpoint to another,
/// deterministic in `(from, to, seed)`: a fresh chamber settles at `from`,
/// the setpoint changes to `to`, and the second settle's duration is
/// returned. Strategy planners (the portfolio race's thermal lanes) use
/// this to charge temperature moves in logical time without owning a
/// chamber of their own.
///
/// # Panics
/// Panics if `from` or `to` is outside the reliable 40–55 °C range.
pub fn settle_cost(from: Celsius, to: Celsius, seed: u64) -> Ms {
    let mut chamber = ThermalChamber::new(from, seed);
    chamber.settle();
    if to == from {
        return Ms::new(0.0);
    }
    chamber.set_setpoint(to);
    chamber.settle()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settles_within_accuracy_band() {
        let mut c = ThermalChamber::new(Celsius::new(45.0), 1);
        let t = c.settle();
        assert!((c.ambient().degrees() - 45.0).abs() <= ACCURACY + 0.1);
        assert!(t.as_secs() > 10.0, "settling should take real time: {t}");
        assert!(t.as_hours() < 1.0, "settling should not take hours: {t}");
    }

    #[test]
    fn holds_band_long_term() {
        let mut c = ThermalChamber::new(Celsius::new(50.0), 2);
        c.settle();
        // Run another 10 minutes; must stay within the accuracy band
        // (allowing brief sensor-noise excursions of 0.1°C).
        for _ in 0..600 {
            c.step();
            let err = (c.ambient().degrees() - 50.0).abs();
            assert!(err <= ACCURACY + 0.15, "excursion {err}");
        }
    }

    #[test]
    fn dram_temp_is_offset_by_15c() {
        let mut c = ThermalChamber::new(Celsius::new(45.0), 3);
        c.settle();
        let d = c.dram_temperature().degrees();
        assert!((d - 60.0).abs() < 0.5, "dram temp {d}");
    }

    #[test]
    fn setpoint_change_resettles() {
        let mut c = ThermalChamber::new(Celsius::new(40.0), 4);
        c.settle();
        c.set_setpoint(Celsius::new(55.0));
        let t = c.settle();
        assert!((c.ambient().degrees() - 55.0).abs() <= ACCURACY + 0.1);
        assert!(t.as_secs() > 5.0);
        assert_eq!(c.setpoint(), Celsius::new(55.0));
    }

    #[test]
    #[should_panic(expected = "outside reliable range")]
    fn rejects_out_of_range_setpoint() {
        ThermalChamber::new(Celsius::new(60.0), 5);
    }

    #[test]
    #[should_panic(expected = "outside reliable range")]
    fn rejects_below_range_setpoint() {
        let mut c = ThermalChamber::new(Celsius::new(45.0), 6);
        c.set_setpoint(Celsius::new(30.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = ThermalChamber::new(Celsius::new(45.0), 9);
        let mut b = ThermalChamber::new(Celsius::new(45.0), 9);
        assert_eq!(a.settle(), b.settle());
        assert_eq!(a.ambient(), b.ambient());
    }

    #[test]
    fn settle_cost_is_deterministic_and_free_for_no_move() {
        assert_eq!(
            settle_cost(Celsius::new(45.0), Celsius::new(50.0), 9),
            settle_cost(Celsius::new(45.0), Celsius::new(50.0), 9),
        );
        assert_eq!(settle_cost(Celsius::new(45.0), Celsius::new(45.0), 9), Ms::new(0.0));
        assert!(settle_cost(Celsius::new(45.0), Celsius::new(55.0), 9).as_secs() > 5.0);
    }
}
