//! SPEC-CPU2006-like synthetic workload generation (paper §7.2).
//!
//! The paper evaluates 20 multiprogrammed heterogeneous mixes, each of 4
//! benchmarks randomly drawn from SPEC CPU2006. We have no SPEC traces, so
//! this crate generates synthetic access streams parameterized per
//! benchmark by published memory characteristics — last-level-cache misses
//! per kilo-instruction (MPKI), row-buffer locality, and write fraction —
//! which are the properties that determine sensitivity to DRAM refresh.
//!
//! # Example
//!
//! ```
//! use reaper_workloads::{BenchmarkProfile, WorkloadMix};
//!
//! let mixes = WorkloadMix::paper_mixes(42);
//! assert_eq!(mixes.len(), 20);
//! assert_eq!(mixes[0].traces().len(), 4);
//!
//! let mcf = BenchmarkProfile::spec2006()
//!     .iter()
//!     .find(|p| p.name == "mcf")
//!     .unwrap();
//! assert!(mcf.mpki > 20.0);
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reaper_memsim::{Access, AccessTrace};

/// Memory-behavior profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006 component).
    pub name: &'static str,
    /// Last-level-cache misses per kilo-instruction.
    pub mpki: f64,
    /// Probability a consecutive access to the same bank reuses the open
    /// row (streaming benchmarks are high, pointer-chasing low).
    pub row_locality: f64,
    /// Fraction of misses that are writes (dirty evictions).
    pub write_fraction: f64,
    /// Distinct rows the benchmark touches per bank.
    pub footprint_rows: u32,
}

impl BenchmarkProfile {
    /// A representative slice of SPEC CPU2006, spanning memory-bound
    /// (mcf, lbm, milc, libquantum) through compute-bound (gamess, povray)
    /// behavior. MPKI magnitudes follow the commonly reported
    /// characterization literature.
    pub fn spec2006() -> &'static [BenchmarkProfile] {
        const PROFILES: &[BenchmarkProfile] = &[
            BenchmarkProfile { name: "mcf", mpki: 36.0, row_locality: 0.20, write_fraction: 0.25, footprint_rows: 8192 },
            BenchmarkProfile { name: "lbm", mpki: 22.0, row_locality: 0.75, write_fraction: 0.45, footprint_rows: 4096 },
            BenchmarkProfile { name: "milc", mpki: 16.0, row_locality: 0.55, write_fraction: 0.30, footprint_rows: 4096 },
            BenchmarkProfile { name: "libquantum", mpki: 14.0, row_locality: 0.90, write_fraction: 0.20, footprint_rows: 1024 },
            BenchmarkProfile { name: "soplex", mpki: 12.0, row_locality: 0.45, write_fraction: 0.25, footprint_rows: 4096 },
            BenchmarkProfile { name: "omnetpp", mpki: 9.0, row_locality: 0.25, write_fraction: 0.30, footprint_rows: 8192 },
            BenchmarkProfile { name: "leslie3d", mpki: 7.5, row_locality: 0.65, write_fraction: 0.35, footprint_rows: 2048 },
            BenchmarkProfile { name: "GemsFDTD", mpki: 6.5, row_locality: 0.60, write_fraction: 0.40, footprint_rows: 2048 },
            BenchmarkProfile { name: "sphinx3", mpki: 5.0, row_locality: 0.50, write_fraction: 0.15, footprint_rows: 2048 },
            BenchmarkProfile { name: "gcc", mpki: 3.5, row_locality: 0.40, write_fraction: 0.30, footprint_rows: 4096 },
            BenchmarkProfile { name: "bzip2", mpki: 2.5, row_locality: 0.50, write_fraction: 0.35, footprint_rows: 1024 },
            BenchmarkProfile { name: "hmmer", mpki: 1.2, row_locality: 0.60, write_fraction: 0.20, footprint_rows: 512 },
            BenchmarkProfile { name: "h264ref", mpki: 0.8, row_locality: 0.55, write_fraction: 0.25, footprint_rows: 512 },
            BenchmarkProfile { name: "povray", mpki: 0.1, row_locality: 0.50, write_fraction: 0.20, footprint_rows: 128 },
            BenchmarkProfile { name: "gamess", mpki: 0.05, row_locality: 0.50, write_fraction: 0.20, footprint_rows: 128 },
        ];
        PROFILES
    }

    /// Mean instructions between misses (`1000 / MPKI`).
    pub fn mean_gap(&self) -> f64 {
        1000.0 / self.mpki
    }

    /// Generates a cyclic access trace of `len` accesses, deterministic in
    /// `seed`.
    ///
    /// Gaps are geometric around [`BenchmarkProfile::mean_gap`]; banks are
    /// uniform over 8; rows reuse the per-bank open row with probability
    /// `row_locality`, otherwise jump within the footprint.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn generate_trace(&self, len: usize, seed: u64) -> AccessTrace {
        assert!(len > 0, "trace length must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(self.name));
        let mut last_row = [0u32; 8];
        let p_continue = 1.0 - 1.0 / self.mean_gap().max(1.0);
        let ln_p = p_continue.ln();
        let accesses = (0..len)
            .map(|_| {
                // Geometric gap with mean mean_gap, sampled by inversion
                // (O(1) even for compute-bound benchmarks with huge gaps).
                let gap = if ln_p >= 0.0 {
                    0u32
                } else {
                    let u: f64 = rng.random::<f64>().max(1e-300);
                    (u.ln() / ln_p).min(100_000.0) as u32
                };
                let bank = rng.random_range(0..8u8);
                let row = if rng.random::<f64>() < self.row_locality {
                    last_row[bank as usize]
                } else {
                    rng.random_range(0..self.footprint_rows)
                };
                last_row[bank as usize] = row;
                Access {
                    gap,
                    bank,
                    row,
                    is_write: rng.random::<f64>() < self.write_fraction,
                }
            })
            .collect();
        AccessTrace::new(accesses)
    }
}

/// Stable tiny hash for benchmark-name seeding.
fn fxhash(s: &str) -> u64 {
    s.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        })
}

/// A 4-benchmark multiprogrammed workload mix.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    names: Vec<&'static str>,
    traces: Vec<AccessTrace>,
}

impl WorkloadMix {
    /// Builds a mix from explicit profiles.
    ///
    /// # Panics
    /// Panics if `profiles` is empty.
    pub fn from_profiles(profiles: &[BenchmarkProfile], trace_len: usize, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "mix needs at least one benchmark");
        Self {
            names: profiles.iter().map(|p| p.name).collect(),
            traces: profiles
                .iter()
                .enumerate()
                .map(|(i, p)| p.generate_trace(trace_len, seed.wrapping_add(i as u64 * 7919)))
                .collect(),
        }
    }

    /// The paper's evaluation set: 20 mixes of 4 randomly selected SPEC
    /// benchmarks each (§7.2), deterministic in `seed`.
    pub fn paper_mixes(seed: u64) -> Vec<WorkloadMix> {
        Self::random_mixes(20, 4, 2048, seed)
    }

    /// `n` random mixes of `per_mix` benchmarks with `trace_len` accesses
    /// per trace.
    pub fn random_mixes(n: usize, per_mix: usize, trace_len: usize, seed: u64) -> Vec<WorkloadMix> {
        let all = BenchmarkProfile::spec2006();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let profiles: Vec<BenchmarkProfile> = (0..per_mix)
                    .map(|_| all[rng.random_range(0..all.len())])
                    .collect();
                Self::from_profiles(&profiles, trace_len, seed.wrapping_add(i as u64 * 104_729))
            })
            .collect()
    }

    /// Benchmark names in core order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Traces in core order.
    pub fn traces(&self) -> &[AccessTrace] {
        &self.traces
    }

    /// A display label like `mcf+lbm+gcc+gamess`.
    pub fn label(&self) -> String {
        self.names.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_table_is_heterogeneous() {
        let profiles = BenchmarkProfile::spec2006();
        assert!(profiles.len() >= 12);
        let max = profiles.iter().map(|p| p.mpki).fold(0.0, f64::max);
        let min = profiles.iter().map(|p| p.mpki).fold(f64::MAX, f64::min);
        assert!(max / min > 100.0, "MPKI spread {min}..{max}");
        // Unique names.
        let mut names: Vec<_> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), profiles.len());
    }

    #[test]
    fn trace_mean_gap_tracks_mpki() {
        for p in BenchmarkProfile::spec2006().iter().filter(|p| p.mpki > 1.0) {
            let t = p.generate_trace(4000, 9);
            let measured = t.mean_gap();
            let expected = p.mean_gap();
            assert!(
                (measured / expected - 1.0).abs() < 0.25,
                "{}: measured {measured}, expected {expected}",
                p.name
            );
        }
    }

    #[test]
    fn trace_row_locality_tracks_profile() {
        let quantum = BenchmarkProfile::spec2006()
            .iter()
            .find(|p| p.name == "libquantum")
            .unwrap();
        let mcf = BenchmarkProfile::spec2006()
            .iter()
            .find(|p| p.name == "mcf")
            .unwrap();
        let tq = quantum.generate_trace(8000, 3);
        let tm = mcf.generate_trace(8000, 3);
        assert!(
            tq.row_locality() > tm.row_locality() + 0.3,
            "libquantum {} vs mcf {}",
            tq.row_locality(),
            tm.row_locality()
        );
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let p = BenchmarkProfile::spec2006()[0];
        assert_eq!(p.generate_trace(100, 5), p.generate_trace(100, 5));
        assert_ne!(p.generate_trace(100, 5), p.generate_trace(100, 6));
    }

    #[test]
    fn paper_mixes_shape() {
        let mixes = WorkloadMix::paper_mixes(1);
        assert_eq!(mixes.len(), 20);
        for m in &mixes {
            assert_eq!(m.traces().len(), 4);
            assert_eq!(m.names().len(), 4);
            assert!(m.label().contains('+'));
        }
        // Determinism.
        let again = WorkloadMix::paper_mixes(1);
        assert_eq!(mixes[3].names(), again[3].names());
        // Heterogeneity across mixes.
        let distinct: std::collections::HashSet<String> =
            mixes.iter().map(|m| m.label()).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn empty_mix_rejected() {
        WorkloadMix::from_profiles(&[], 10, 0);
    }
}
