//! Characterize a chip from a few sample points and plan reach conditions
//! analytically — the paper's §6.3 program ("a few sample points around
//! the tradeoff space could provide enough information"), plus the
//! SPD-record round trip the paper wishes vendors shipped.
//!
//! ```text
//! cargo run --release --example characterize_chip
//! ```

// Examples narrate to stdout and fail loudly: panics and prints are the
// point of a runnable walkthrough.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing, clippy::print_stdout)]

use reaper::core::planner::{CharacterizeOptions, ChipCharacterization};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{RetentionConfig, SimulatedChip, SpdRecord};
use reaper::softmc::TestHarness;

fn main() {
    let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8);
    let chip = SimulatedChip::new(cfg.clone(), 63);
    let mut harness = TestHarness::new(chip, Celsius::new(45.0), 63);

    println!("characterizing from a few sample points ...");
    let c = ChipCharacterization::measure(&mut harness, CharacterizeOptions::default());
    println!("  samples: {:?}", c.samples);
    println!("  fitted failure-count law: {}", c.ber_fit);
    println!(
        "  fitted temperature coefficient: {:.3}/°C (chip truth: {:.3}/°C)",
        c.temp_coefficient,
        Vendor::B.temperature_coefficient()
    );
    println!("  characterization runtime: {}", c.runtime);

    let target = Ms::new(1024.0);
    for max_fpr in [0.25, 0.50, 0.75] {
        match c.recommend_reach(target, max_fpr) {
            Some(reach) => println!(
                "  FPR budget {:>3.0}% → recommend {} (predicted FPR {:.1}%)",
                max_fpr * 100.0,
                reach,
                c.predicted_fpr(target, reach.delta_interval) * 100.0
            ),
            None => println!("  FPR budget {:>3.0}% → no viable reach", max_fpr * 100.0),
        }
    }
    println!(
        "  10°C of reach ≙ {} of interval at this target",
        c.interval_equivalent_of_temp(target, 10.0)
    );

    // The vendor-side alternative: ship the fits in SPD (§6.3).
    let spd = SpdRecord::from_config(&cfg);
    let encoded = spd.encode();
    println!("\nSPD record a vendor could ship instead:\n{encoded}");
    let decoded = SpdRecord::decode(&encoded).expect("well-formed SPD");
    assert_eq!(decoded, spd);
    println!("(decodes losslessly back into a planning-ready configuration)");
}
