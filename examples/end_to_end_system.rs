//! End-to-end system evaluation in miniature: how much performance and
//! DRAM power does an extended refresh interval buy a 4-core system, and
//! how much of it survives online profiling overhead (brute force vs.
//! REAPER)? A single-configuration slice of the paper's Fig. 13.
//!
//! ```text
//! cargo run --release --example end_to_end_system
//! ```

// Examples narrate to stdout and fail loudly: panics and prints are the
// point of a runnable walkthrough.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing, clippy::print_stdout)]

use reaper::core::ecc::EccStrength;
use reaper::core::longevity::LongevityModel;
use reaper::core::overhead::{ipc_with_overhead, module_bytes, OverheadModel};
use reaper::core::TargetConditions;
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::memsim::{simulate, weighted_speedup, SimConfig};
use reaper::power::PowerModel;
use reaper::retention::RetentionConfig;
use reaper::workloads::WorkloadMix;

fn main() {
    let chip_gbit = 64;
    let mix = &WorkloadMix::paper_mixes(5)[0];
    let instructions = 150_000;
    println!("workload mix: {} on 32 x {chip_gbit}Gb LPDDR4-3200\n", mix.label());

    // Alone-IPC denominators at the 64ms baseline.
    let base_cfg = SimConfig::lpddr4_3200(chip_gbit, Some(Ms::new(64.0)));
    let alone: Vec<f64> = mix
        .traces()
        .iter()
        .map(|t| simulate(&base_cfg, std::slice::from_ref(t), instructions).ipc[0])
        .collect();
    let base = simulate(&base_cfg, mix.traces(), instructions);
    let ws_base = weighted_speedup(&base.ipc, &alone);
    let power_model = PowerModel::lpddr4(chip_gbit, 32);
    let p_base = power_model.breakdown(&base.stats, base.elapsed_secs()).total_w();
    println!("baseline 64ms: weighted speedup {ws_base:.3}, DRAM power {p_base:.2} W");

    let retention = RetentionConfig::for_vendor(Vendor::B);
    println!(
        "\n{:>9} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "interval", "ideal", "brute", "REAPER", "power", "reprofile"
    );
    for interval in [256.0, 512.0, 1024.0, 1280.0, 1536.0] {
        let cfg = SimConfig::lpddr4_3200(chip_gbit, Some(Ms::new(interval)));
        let r = simulate(&cfg, mix.traces(), instructions);
        let ideal = weighted_speedup(&r.ipc, &alone) / ws_base - 1.0;
        let p = power_model.breakdown(&r.stats, r.elapsed_secs()).total_w();

        let target = TargetConditions::new(Ms::new(interval), Celsius::new(45.0));
        let longevity = LongevityModel::for_system(
            EccStrength::secded(),
            module_bytes(chip_gbit),
            1e-15,
            &retention,
            target,
            1.0,
        )
        .longevity()
        .expect("viable at full coverage");
        let round = OverheadModel::new(Ms::new(interval), 6, 16, module_bytes(chip_gbit));
        let brute_frac = round.time_fraction(longevity);
        let reaper_frac = round.time_fraction_with_speedup(longevity, 2.5);

        println!(
            "{:>9} {:>7.1}% {:>10.1}% {:>10.1}% {:>10.1}% {:>10.1}h",
            Ms::new(interval).to_string(),
            ideal * 100.0,
            (ipc_with_overhead(1.0 + ideal, brute_frac) - 1.0) * 100.0,
            (ipc_with_overhead(1.0 + ideal, reaper_frac) - 1.0) * 100.0,
            (1.0 - p / p_base) * 100.0,
            longevity.as_hours(),
        );
    }
    println!("\n(ideal = zero-overhead profiling; power = DRAM power reduction vs 64ms)");
}
