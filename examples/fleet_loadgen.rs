//! Closed-loop fleet load generator and gate.
//!
//! Three phases, one report (`--out BENCH_fleet.json`):
//!
//! 1. **Single-node baseline** — one `reaper-serve` instance, the same
//!    cache-hit read loop as `serve_loadgen` (the BENCH_serve.json
//!    scenario).
//! 2. **Fleet scenario** — N shards behind the router. The keyspace is
//!    a population of one million simulated chips whose access ranks
//!    are Zipf-skewed (log-uniform, s≈1) onto the resident profiles;
//!    client threads drive a closed-loop mix of submits (re-registration
//!    dedup), conditional profile reads, `delta?since=` catch-ups, and
//!    watch long-polls — while the main thread performs rolling shard
//!    restarts (kill → restart on a fresh port → replication tick).
//!    Byte-equality against direct library execution is asserted for
//!    every profile after the dust settles.
//! 3. **Concurrency ladder** — how many simultaneous connections a
//!    thread-per-connection server (64-thread cap) sustains versus the
//!    `poll(2)` event loop, by holding K open and probing the last one.
//!
//! `--gate` enforces the CI floor: fleet aggregate throughput ≥ 2× the
//! single-node cache-hit baseline (on multicore hosts — a single
//! hardware thread cannot express shard parallelism, so there the ratio
//! is recorded but not enforced), and the event loop sustaining ≥ 4×
//! the thread-per-connection connection count.
//!
//! ```text
//! cargo run --release --example fleet_loadgen -- --seconds 3 --gate
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    clippy::print_stdout,
    clippy::print_stderr,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::exit
)]

#[cfg(unix)]
fn main() {
    fleet_loadgen::run();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("fleet_loadgen requires the unix poll(2) event loop");
}

#[cfg(unix)]
mod fleet_loadgen {
    use std::io::{BufReader, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use reaper_core::{FailureProfile, ProfilingRequest};
    use reaper_exec::rng;
    use reaper_fleet::{Fleet, FleetConfig};
    use reaper_serve::server::ConnectionModel;
    use reaper_serve::{http, json, Client, Server, ServerConfig};

    /// Simulated chip population whose ranks the Zipf mix draws from.
    const CHIP_POPULATION: u64 = 1_000_000;
    /// Resident profiles the population folds onto.
    const JOB_SEEDS: [u64; 8] = [101, 202, 303, 404, 505, 606, 707, 808];
    /// Thread cap for the thread-per-connection ladder run.
    const TPC_MAX_THREADS: usize = 64;
    /// Connection ladder rungs.
    const LADDER: [usize; 4] = [64, 128, 256, 512];

    /// A small job so warm-up completes in seconds.
    fn quick_request(seed: u64) -> ProfilingRequest {
        let mut r = ProfilingRequest::example(seed);
        r.capacity_den = 64;
        r.rounds = 2;
        r.target_interval_ms = 512.0;
        r.reach_delta_ms = 128.0;
        r
    }

    /// Adds one fresh cell to an encoded profile (a re-profiling push).
    fn grow_profile(bytes: &[u8]) -> Vec<u8> {
        let profile = FailureProfile::from_bytes(bytes).expect("decode profile");
        let mut cells: Vec<u64> = profile.iter().collect();
        let fresh = cells.iter().max().copied().unwrap_or(0) + 1;
        cells.push(fresh);
        FailureProfile::from_cells(cells).to_bytes()
    }

    /// Log-uniform rank in `[1, CHIP_POPULATION]` — Zipf(s≈1) access
    /// skew: rank 1 is drawn about 20× as often as rank one million.
    fn zipf_rank(x: u64) -> u64 {
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let ln_n = (CHIP_POPULATION as f64).ln();
        (u * ln_n).exp().floor().max(1.0).min(CHIP_POPULATION as f64) as u64
    }

    #[derive(Default)]
    struct Samples {
        micros: Vec<u64>,
    }

    impl Samples {
        fn record(&mut self, started_at: Instant) {
            let us = u64::try_from(started_at.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.micros.push(us);
        }

        fn merge(&mut self, other: Samples) {
            self.micros.extend(other.micros);
        }

        fn percentile(&self, p: f64) -> u64 {
            if self.micros.is_empty() {
                return 0;
            }
            let rank = ((self.micros.len() - 1) as f64 * p).round() as usize;
            self.micros[rank.min(self.micros.len() - 1)]
        }

        fn count(&self) -> usize {
            self.micros.len()
        }
    }

    struct Args {
        seconds: u64,
        threads: usize,
        shards: usize,
        out: Option<String>,
        gate: bool,
    }

    fn parse_args() -> Args {
        let mut args = Args {
            seconds: 3,
            threads: 4,
            shards: 4,
            out: None,
            gate: false,
        };
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--gate" => args.gate = true,
                "--seconds" => {
                    args.seconds = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seconds takes an integer");
                }
                "--threads" => {
                    args.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads takes an integer");
                }
                "--shards" => {
                    args.shards = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--shards takes an integer");
                }
                "--out" => args.out = it.next().cloned(),
                other => panic!(
                    "unknown flag {other}; usage: fleet_loadgen [--seconds N] [--threads N] \
                     [--shards N] [--out FILE] [--gate]"
                ),
            }
        }
        args.seconds = args.seconds.max(1);
        args.threads = args.threads.max(1);
        args.shards = args.shards.max(1);
        args
    }

    /// Phase 1: single-node closed-loop cache-hit reads (the
    /// BENCH_serve.json scenario), returning requests/second.
    fn single_node_baseline(seconds: u64, threads: usize) -> f64 {
        let server = Server::start(ServerConfig::default()).expect("bind baseline server");
        let addr = server.local_addr();
        let mut warm = Client::new(addr);
        let job_ids: Vec<String> = JOB_SEEDS
            .iter()
            .map(|&s| warm.submit(&quick_request(s)).expect("submit").job_id)
            .collect();
        for id in &job_ids {
            warm.wait_for_profile(id, Duration::from_millis(10), 3000)
                .expect("baseline warm-up");
        }

        let stop = AtomicBool::new(false);
        let started = Instant::now();
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let stop = &stop;
                    let job_ids = &job_ids;
                    scope.spawn(move || {
                        let mut client = Client::new(addr);
                        let mut n = 0u64;
                        let mut i = t;
                        while !stop.load(Ordering::Relaxed) {
                            let id = &job_ids[i % job_ids.len()];
                            client
                                .profile_bytes(id)
                                .expect("baseline read")
                                .expect("resident");
                            n += 1;
                            i += 1;
                        }
                        n
                    })
                })
                .collect();
            while started.elapsed() < Duration::from_secs(seconds) {
                std::thread::sleep(Duration::from_millis(20));
            }
            stop.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        let rps = total as f64 / started.elapsed().as_secs_f64();
        server.shutdown();
        rps
    }

    struct FleetOutcome {
        /// Aggregate cache-hit read capacity (direct per-shard reads,
        /// same request class as the single-node baseline).
        aggregate_rps: f64,
        submit: Samples,
        read: Samples,
        delta: Samples,
        watch: Samples,
        shed: u64,
        restarts: u64,
        elapsed: f64,
    }

    /// Aggregate cache-hit capacity: every thread reads profiles from
    /// the shard that **owns** them, directly — the same request class
    /// as the single-node baseline, summed across the fleet.
    fn aggregate_cache_hit(
        fleet: &Fleet,
        jobs: &[(u64, String)],
        seconds: u64,
        threads: usize,
    ) -> f64 {
        let routes: Vec<(SocketAddr, String)> = jobs
            .iter()
            .map(|(id, job_id)| {
                let owner = fleet.owner_of(*id).expect("owner exists");
                let addr = fleet.shard_addr(owner).expect("owner is live");
                (addr, job_id.clone())
            })
            .collect();
        let stop = AtomicBool::new(false);
        let started = Instant::now();
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let stop = &stop;
                    let routes = &routes;
                    scope.spawn(move || {
                        let mut clients: Vec<Client> =
                            routes.iter().map(|(addr, _)| Client::new(*addr)).collect();
                        let mut n = 0u64;
                        let mut i = t;
                        while !stop.load(Ordering::Relaxed) {
                            let slot = i % routes.len();
                            clients[slot]
                                .profile_bytes(&routes[slot].1)
                                .expect("aggregate read")
                                .expect("resident");
                            n += 1;
                            i += 1;
                        }
                        n
                    })
                })
                .collect();
            while started.elapsed() < Duration::from_secs(seconds) {
                std::thread::sleep(Duration::from_millis(20));
            }
            stop.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        total as f64 / started.elapsed().as_secs_f64()
    }

    /// Phase 2: the fleet scenario. Returns the samples and asserts
    /// byte equality against `expected` (job_id → epoch-1 bytes) after
    /// the rolling restarts.
    fn fleet_scenario(
        args: &Args,
        expected: &[(String, Vec<u8>)],
    ) -> FleetOutcome {
        let mut config = FleetConfig {
            shards: args.shards,
            ..FleetConfig::default()
        };
        config.shard_template.workers = 1;
        let mut fleet = Fleet::start(config).expect("start fleet");
        let addr = fleet.router_addr().expect("router address");

        // Warm: submit all jobs, wait, push one epoch each so delta
        // reads have a chain to fetch, then replicate the fleet warm.
        let mut warm = Client::new(addr);
        for (i, seed) in JOB_SEEDS.iter().enumerate() {
            let receipt = warm.submit(&quick_request(*seed)).expect("submit");
            assert_eq!(receipt.job_id, expected[i].0, "job IDs are content-addressed");
        }
        for (job_id, pushed) in expected {
            warm.wait_for_profile(job_id, Duration::from_millis(10), 3000)
                .expect("fleet warm-up");
            let receipt = warm.push_epoch(job_id, pushed).expect("push epoch");
            assert_eq!(receipt.epoch, 1);
        }
        fleet.replicate_once();

        // Phase 2a: aggregate cache-hit capacity before the chaos.
        let jobs: Vec<(u64, String)> = JOB_SEEDS
            .iter()
            .zip(expected)
            .map(|(&seed, (job_id, _))| (quick_request(seed).job_id(), job_id.clone()))
            .collect();
        let aggregate_rps = aggregate_cache_hit(&fleet, &jobs, args.seconds, args.threads);

        let stop = AtomicBool::new(false);
        let shed = AtomicU64::new(0);
        let started = Instant::now();
        let deadline = Duration::from_secs(args.seconds);
        let (samples, restarts) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.threads)
                .map(|t| {
                    let stop = &stop;
                    let shed = &shed;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut client = Client::new(addr);
                        let mut submit = Samples::default();
                        let mut read = Samples::default();
                        let mut delta = Samples::default();
                        let mut watch = Samples::default();
                        let mut i = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let draw = rng::mix64((t as u64) << 32 | i);
                            let rank = zipf_rank(draw);
                            let slot = (rank % JOB_SEEDS.len() as u64) as usize;
                            let (job_id, _) = &expected[slot];
                            // Mix per 32 draws: 2 submits, 4 deltas,
                            // 1 watch, 25 conditional reads.
                            let t0 = Instant::now();
                            let ok = match i % 32 {
                                // Re-registration normally dedups; a
                                // submit racing a just-restarted shard
                                // may recreate the job, which the next
                                // replication tick reconverges.
                                0 | 1 => client.submit(&quick_request(JOB_SEEDS[slot])).is_ok(),
                                2..=5 => client.delta_since(job_id, 0).is_ok(),
                                6 => client.watch(job_id, Some(0), 25, 1).is_ok(),
                                _ => matches!(client.profile_bytes(job_id), Ok(Some(_))),
                            };
                            if ok {
                                match i % 32 {
                                    0 | 1 => submit.record(t0),
                                    2..=5 => delta.record(t0),
                                    6 => watch.record(t0),
                                    _ => read.record(t0),
                                }
                            } else {
                                // Mid-restart shed (503/404): retryable
                                // by contract; count it, move on.
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            i += 1;
                        }
                        (submit, read, delta, watch)
                    })
                })
                .collect();

            // Rolling restarts from the main thread: at ~1/4, 2/4, 3/4
            // of the run, bounce one shard and re-replicate.
            let mut restarts = 0u64;
            let bounce_at: Vec<Duration> = (1..=3)
                .map(|q| Duration::from_millis(args.seconds * 1000 * q / 4))
                .collect();
            let mut next = 0usize;
            while started.elapsed() < deadline {
                if next < bounce_at.len()
                    && started.elapsed() >= bounce_at[next]
                    && args.shards > 1
                {
                    let victim = next % args.shards;
                    fleet.kill_shard(victim);
                    std::thread::sleep(Duration::from_millis(30));
                    fleet
                        .restart_shard(victim)
                        .expect("restart shard")
                        .expect("valid index");
                    fleet.replicate_once();
                    restarts += 1;
                    next += 1;
                } else {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            stop.store(true, Ordering::Relaxed);

            let mut submit = Samples::default();
            let mut read = Samples::default();
            let mut delta = Samples::default();
            let mut watch = Samples::default();
            for h in handles {
                let (s, r, d, w) = h.join().expect("worker thread");
                submit.merge(s);
                read.merge(r);
                delta.merge(d);
                watch.merge(w);
            }
            ((submit, read, delta, watch), restarts)
        });
        let elapsed = started.elapsed().as_secs_f64();

        // Byte equality after the rolling restarts: every profile,
        // through the router, must equal the direct-library bytes.
        fleet.replicate_once();
        let mut verify = Client::new(addr);
        for (job_id, pushed) in expected {
            let bytes = verify
                .wait_for_profile(job_id, Duration::from_millis(10), 1000)
                .expect("post-restart read");
            assert_eq!(&bytes, pushed, "byte equality broken for {job_id}");
        }

        fleet.shutdown();
        let (submit, read, delta, watch) = samples;
        FleetOutcome {
            aggregate_rps,
            submit,
            read,
            delta,
            watch,
            shed: shed.load(Ordering::Relaxed),
            restarts,
            elapsed,
        }
    }

    /// Opens `k` connections, then probes the last-opened one with a
    /// health check. A server past its concurrency limit has already
    /// shed that connection (`503` + close), so the probe fails.
    fn sustains(addr: SocketAddr, k: usize) -> bool {
        let mut conns = Vec::with_capacity(k);
        for _ in 0..k {
            let Ok(stream) = TcpStream::connect(addr) else {
                return false;
            };
            conns.push(stream);
        }
        let probe = conns.pop().expect("k >= 1");
        let _ = probe.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = probe.set_nodelay(true);
        let mut reader = BufReader::new(probe);
        if reader
            .get_mut()
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: ladder\r\ncontent-length: 0\r\n\r\n")
            .is_err()
        {
            return false;
        }
        match http::read_response(&mut reader) {
            Ok(resp) => resp.status == 200,
            Err(_) => false,
        }
    }

    /// Phase 3: largest ladder rung each connection model sustains.
    fn concurrency_ladder(model: ConnectionModel) -> usize {
        let config = ServerConfig {
            connection_model: model,
            workers: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(config).expect("bind ladder server");
        let addr = server.local_addr();
        let mut best = 0;
        for k in LADDER {
            if sustains(addr, k) {
                best = k;
            } else {
                break;
            }
        }
        server.shutdown();
        best
    }

    pub fn run() {
        let args = parse_args();
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);

        // Ground truth (epoch 0 then the grown epoch 1) per job.
        let expected: Vec<(String, Vec<u8>)> = JOB_SEEDS
            .iter()
            .map(|&seed| {
                let request = quick_request(seed);
                let job_id = ProfilingRequest::format_job_id(request.job_id());
                let outcome = request.execute().expect("direct execution");
                let epoch1 = grow_profile(&outcome.run.profile.to_bytes());
                (job_id, epoch1)
            })
            .collect();

        println!("fleet_loadgen: phase 1/3 — single-node baseline ({}s)", args.seconds);
        let baseline_rps = single_node_baseline(args.seconds, args.threads);
        println!("  single-node cache-hit baseline: {baseline_rps:.0} req/s");

        println!(
            "fleet_loadgen: phase 2/3 — {} shards, {} threads, Zipf mix over {} chips, rolling restarts ({}s)",
            args.shards, args.threads, CHIP_POPULATION, args.seconds
        );
        let outcome = fleet_scenario(&args, &expected);
        let fleet_total = outcome.submit.count()
            + outcome.read.count()
            + outcome.delta.count()
            + outcome.watch.count();
        let mixed_rps = fleet_total as f64 / outcome.elapsed;
        println!(
            "  aggregate cache-hit capacity: {:.0} req/s across {} shards",
            outcome.aggregate_rps, args.shards
        );
        println!(
            "  mixed scenario: {fleet_total} ok requests in {:.2}s = {mixed_rps:.0} req/s ({} shed during {} restarts); byte equality held",
            outcome.elapsed, outcome.shed, outcome.restarts
        );

        println!("fleet_loadgen: phase 3/3 — concurrency ladder");
        let tpc = concurrency_ladder(ConnectionModel::ThreadPerConnection {
            max_threads: TPC_MAX_THREADS,
        });
        let eventloop = concurrency_ladder(ConnectionModel::EventLoop {
            max_connections: reaper_serve::server::DEFAULT_MAX_CONNECTIONS,
        });
        println!(
            "  thread-per-connection (cap {TPC_MAX_THREADS}) sustains {tpc}; event loop sustains {eventloop}"
        );

        let throughput_ratio = if baseline_rps > 0.0 {
            outcome.aggregate_rps / baseline_rps
        } else {
            0.0
        };
        let conn_ratio = if tpc > 0 {
            eventloop as f64 / tpc as f64
        } else {
            0.0
        };
        let multicore = cores >= 2;
        let throughput_ok = !multicore || throughput_ratio >= 2.0;
        let conn_ok = conn_ratio >= 4.0;

        let mut outcome = outcome;
        let mut classes = Vec::new();
        for (name, samples) in [
            ("submit_dedup", &mut outcome.submit),
            ("profile_read", &mut outcome.read),
            ("delta_read", &mut outcome.delta),
            ("watch_poll", &mut outcome.watch),
        ] {
            samples.micros.sort_unstable();
            classes.push(json::obj([
                ("class", json::str(name)),
                ("requests", json::uint(samples.count() as u64)),
                (
                    "req_per_s",
                    json::num(
                        ((samples.count() as f64 / outcome.elapsed) * 10.0).round() / 10.0,
                    ),
                ),
                ("p50_us", json::uint(samples.percentile(0.50))),
                ("p99_us", json::uint(samples.percentile(0.99))),
            ]));
        }

        let doc = json::obj([
            ("benchmark", json::str("fleet_loadgen")),
            ("cores", json::uint(cores as u64)),
            ("shards", json::uint(args.shards as u64)),
            ("threads", json::uint(args.threads as u64)),
            ("duration_s", json::num((outcome.elapsed * 100.0).round() / 100.0)),
            ("chip_population", json::uint(CHIP_POPULATION)),
            (
                "single_node_baseline_req_per_s",
                json::num((baseline_rps * 10.0).round() / 10.0),
            ),
            (
                "fleet_aggregate_cachehit_req_per_s",
                json::num((outcome.aggregate_rps * 10.0).round() / 10.0),
            ),
            (
                "fleet_mixed_req_per_s",
                json::num((mixed_rps * 10.0).round() / 10.0),
            ),
            (
                "throughput_ratio",
                json::num((throughput_ratio * 100.0).round() / 100.0),
            ),
            ("shed_requests", json::uint(outcome.shed)),
            ("rolling_restarts", json::uint(outcome.restarts)),
            ("byte_equality", json::Value::Bool(true)),
            ("classes", json::Value::Arr(classes)),
            (
                "concurrency",
                json::obj([
                    ("tpc_max_threads", json::uint(TPC_MAX_THREADS as u64)),
                    ("tpc_sustained", json::uint(tpc as u64)),
                    ("eventloop_sustained", json::uint(eventloop as u64)),
                    ("ratio", json::num((conn_ratio * 100.0).round() / 100.0)),
                ]),
            ),
            (
                "gate",
                json::obj([
                    ("requested", json::Value::Bool(args.gate)),
                    ("multicore", json::Value::Bool(multicore)),
                    (
                        "throughput_enforced",
                        json::Value::Bool(args.gate && multicore),
                    ),
                    ("throughput_ok", json::Value::Bool(throughput_ok)),
                    ("connection_ok", json::Value::Bool(conn_ok)),
                ]),
            ),
        ]);

        if let Some(path) = &args.out {
            std::fs::write(path, doc.encode() + "\n").expect("write --out file");
            println!("fleet_loadgen: wrote {path}");
        } else {
            println!("{}", doc.encode());
        }

        if args.gate {
            if multicore && !throughput_ok {
                eprintln!(
                    "GATE FAIL: fleet aggregate {:.0} req/s < 2x single-node baseline {baseline_rps:.0} req/s",
                    outcome.aggregate_rps
                );
                std::process::exit(1);
            }
            if !conn_ok {
                eprintln!(
                    "GATE FAIL: event loop sustains {eventloop} connections < 4x thread-per-connection {tpc}"
                );
                std::process::exit(1);
            }
            println!("fleet_loadgen: gates passed");
        }
    }
}
