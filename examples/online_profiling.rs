//! Online profiling with a mitigation stack: run a system at an extended
//! refresh interval for simulated days, reprofiling with REAPER on the
//! Eq. 7 longevity schedule, feeding each profile into an ArchShield-style
//! FaultMap, and verifying that SECDED absorbs whatever slips through.
//!
//! ```text
//! cargo run --release --example online_profiling
//! ```

// Examples narrate to stdout and fail loudly: panics and prints are the
// point of a runnable walkthrough.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing, clippy::print_stdout)]

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::ecc::EccStrength;
use reaper::core::longevity::LongevityModel;
use reaper::core::profile::FailureProfile;
use reaper::core::profiler::{PatternSet, Profiler};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::mitigation::archshield::ArchShield;
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

fn main() {
    let retention = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8);
    let dram_bytes = retention.represented_bits / 8;
    let chip = SimulatedChip::new(retention.clone(), 31);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let ecc = EccStrength::secded();

    // How often must we reprofile? Eq. 7 with 99% coverage.
    let longevity = LongevityModel::for_system(ecc, dram_bytes, 1e-15, &retention, target, 0.99)
        .longevity()
        .expect("profile viable at 99% coverage");
    println!(
        "profile longevity at {target}: {:.2} days → reprofiling on that schedule",
        longevity.as_days()
    );

    let shield = ArchShield::new(dram_bytes / 8, 0.04).expect("valid ArchShield");
    let profiler = Profiler::reach(
        target,
        ReachConditions::paper_headline(),
        6,
        PatternSet::Standard,
    );

    let mut harness = TestHarness::new(chip, target.ambient, 31);
    let days = 7.0;
    let mut round = 0u32;
    let mut escapes_worst = 0usize;
    while harness.elapsed().as_days() < days {
        round += 1;
        let run = profiler.run(&mut harness);
        let map = shield
            .with_profile(&run.profile)
            .expect("profile fits the FaultMap");
        // Oracle check: which true failing cells escaped this profile?
        let truth = FailureProfile::from_cells(harness.chip_mut().failing_set_worst_case(
            target.interval,
            target.dram_temp(),
            0.5,
        ));
        let escaped = truth.difference_count(&run.profile);
        escapes_worst = escapes_worst.max(escaped);
        println!(
            "round {round}: profiled {} cells in {:>8}, FaultMap occupancy {:.2}%, escapes {}",
            run.profile.len(),
            run.runtime,
            map.occupancy() * 100.0,
            escaped,
        );
        // Sleep until the next scheduled round.
        harness.idle(longevity);
    }

    let budget = ecc.tolerable_bit_errors(dram_bytes, 1e-15);
    println!(
        "\nworst-case escapes per round: {escapes_worst}; SECDED budget for this module: {budget:.0} — {}",
        if (escapes_worst as f64) < budget {
            "ECC absorbs the misses (paper §6.2)"
        } else {
            "budget exceeded: reprofile more often or widen reach"
        }
    );
}
