//! Portfolio-race benchmark: racing-with-cancellation vs the exhaustive
//! sequential grid.
//!
//! Runs every candidate of the default portfolio **solo** (no race, no
//! cancellation) to establish two baselines — the best single
//! candidate's logical cost, and the exhaustive grid's total (what a
//! profiler that tries every reach condition in sequence would spend) —
//! then races the same candidates with first-finisher-wins cancellation
//! at 1 and 4 threads. Logical costs come from the `CostModel` pass
//! accounting, never the clock, so every gated number is a
//! deterministic function of the seed; wall time is measured only to
//! report the multicore speedup.
//!
//! The default operating point is the interesting one: a tight
//! false-positive budget (`max_fpr 0.5`) that the aggressive reach
//! lanes blow through within their first iteration, so the brute-force
//! control lane wins honestly over many passes while the race cancels
//! six losers at its pass boundaries. That is the regime where a
//! portfolio earns its keep — the winning strategy is not knowable in
//! advance, and racing finds it at ~1x its solo cost instead of the
//! full sequential grid.
//!
//! ```text
//! cargo run --release --example portfolio_bench -- --gate
//! portfolio_bench [--seed N] [--rounds N] [--den N] [--goal F]
//!                 [--fpr F] [--patterns standard|random]
//!                 [--gate] [--out PATH]
//!   --gate   exit nonzero unless
//!              makespan <= 1.05 x best solo candidate's logical cost,
//!              makespan <  the exhaustive grid total (strictly),
//!              and (multicore hosts only) the 4-thread race beats the
//!              1-thread race on wall time
//!   --out    write the JSON record to PATH instead of stdout
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    clippy::print_stdout,
    clippy::print_stderr,
    clippy::cast_precision_loss
)]

use std::process::ExitCode;
use std::time::Instant;

use reaper_portfolio::{PortfolioRequest, RaceOutcome, SoloRun};
use reaper_serve::json;

/// The race-vs-best-single logical-cost ceiling `--gate` enforces.
const GATE_OVERHEAD: f64 = 1.05;

/// Timed repetitions per thread count; the minimum wall time is
/// reported (the race result itself is identical every repetition).
const WALL_REPS: usize = 3;

struct Config {
    seed: u64,
    rounds: u32,
    den: u64,
    goal: f64,
    fpr: f64,
    patterns: reaper_core::PatternSpec,
    gate: bool,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        seed: 7,
        rounds: 40,
        den: 8,
        goal: 0.97,
        fpr: 0.5,
        patterns: reaper_core::PatternSpec::Standard,
        gate: false,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--rounds" => {
                config.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds takes a number");
            }
            "--den" => {
                config.den = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--den takes a number");
            }
            "--goal" => {
                config.goal = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--goal takes a number");
            }
            "--fpr" => {
                config.fpr = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fpr takes a number");
            }
            "--patterns" => {
                config.patterns = match it.next().map(String::as_str) {
                    Some("standard") => reaper_core::PatternSpec::Standard,
                    Some("random") => reaper_core::PatternSpec::RandomOnly,
                    other => panic!("--patterns takes standard|random, got {other:?}"),
                };
            }
            "--gate" => config.gate = true,
            "--out" => {
                config.out = Some(it.next().expect("--out takes a path").clone());
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    config
}

/// Runs the race `WALL_REPS` times at `threads` threads, checking every
/// repetition returns the identical outcome, and reports the best wall
/// time alongside it.
fn race_at(request: &PortfolioRequest, threads: usize) -> (RaceOutcome, f64) {
    reaper_exec::set_thread_count(Some(threads));
    let mut best_wall = f64::INFINITY;
    let mut outcome: Option<RaceOutcome> = None;
    for _ in 0..WALL_REPS {
        let start = Instant::now();
        let (race, _) = request.execute().expect("valid request");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        best_wall = best_wall.min(wall);
        match &outcome {
            None => outcome = Some(race),
            Some(prev) => assert_eq!(prev, &race, "race must repeat bit-identically"),
        }
    }
    reaper_exec::set_thread_count(None);
    (outcome.expect("invariant: WALL_REPS > 0"), best_wall)
}

fn main() -> ExitCode {
    let config = parse_args();
    let mut request = PortfolioRequest::example(config.seed);
    request.rounds = config.rounds;
    request.capacity_den = config.den;
    request.coverage_goal = config.goal;
    request.max_fpr = config.fpr;
    request.patterns = config.patterns;
    let portfolio = request.to_portfolio().expect("valid request");

    // Baselines: every candidate solo, in isolation. The grid total is
    // what an exhaustive sequential search over the same candidate set
    // pays; the best met candidate is the oracle a race can at most tie
    // (plus bounded cancellation overhead on the losing lanes).
    let solos: Vec<SoloRun> = (0..portfolio.candidates().len())
        .map(|i| portfolio.run_solo(i))
        .collect();
    let grid_total_ms: f64 = solos.iter().map(|s| s.cost.as_ms()).sum();
    let best_solo = solos
        .iter()
        .filter(|s| s.met)
        .min_by(|a, b| {
            a.cost
                .as_ms()
                .total_cmp(&b.cost.as_ms())
                .then_with(|| a.spec.sort_key().cmp(&b.spec.sort_key()))
        })
        .expect("some candidate meets the target at the bench operating point");

    // The race, at 1 and 4 threads. The outcome must not depend on the
    // thread count — that is the determinism contract under test.
    let (race_1t, wall_1t_ms) = race_at(&request, 1);
    let (race_4t, wall_4t_ms) = race_at(&request, 4);
    assert_eq!(
        race_1t.winner, race_4t.winner,
        "winner must be identical at 1 and 4 threads"
    );
    let bytes_identical =
        race_1t.profile.to_bytes() == race_4t.profile.to_bytes() && race_1t == race_4t;
    assert!(bytes_identical, "race outcome must be thread-count invariant");

    let makespan_ms = race_1t.makespan.as_ms();
    let ratio_vs_best = makespan_ms / best_solo.cost.as_ms();
    let ratio_vs_grid = makespan_ms / grid_total_ms;
    let wall_speedup = wall_1t_ms / wall_4t_ms;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let multicore = cores >= 4;

    let overhead_ok = ratio_vs_best <= GATE_OVERHEAD;
    let grid_ok = makespan_ms < grid_total_ms;
    let speedup_ok = wall_speedup > 1.0;

    println!(
        "portfolio_race: seed {}, {} candidates, {} rounds each, {} truth cells",
        config.seed,
        portfolio.candidates().len(),
        config.rounds,
        race_1t.truth_cells
    );
    println!(
        "  winner {} ({}) at {:.1} ms logical; {} lanes cancelled",
        race_1t.winner.reach,
        race_1t.winner_strategy.name(),
        race_1t.winner_cost.as_ms(),
        race_1t.cancelled_lanes()
    );
    println!(
        "  makespan {makespan_ms:.1} ms = {ratio_vs_best:.4}x best solo \
         ({:.1} ms), {ratio_vs_grid:.4}x grid total ({grid_total_ms:.1} ms)",
        best_solo.cost.as_ms()
    );
    println!(
        "  wall {wall_1t_ms:.1} ms @1t, {wall_4t_ms:.1} ms @4t — \
         {wall_speedup:.2}x on {cores} cores"
    );

    let solo_records: Vec<json::Value> = solos
        .iter()
        .map(|s| {
            json::obj([
                ("reach", json::str(s.spec.reach.to_string())),
                ("strategy", json::str(s.spec.strategy().name())),
                ("met", json::Value::Bool(s.met)),
                ("cost_ms", json::num(round2(s.cost.as_ms()))),
                ("coverage", json::num(round4(s.coverage))),
                ("fpr", json::num(round4(s.fpr))),
                ("passes", json::uint(u64::from(s.passes))),
            ])
        })
        .collect();
    let record = json::obj([
        ("benchmark", json::str("portfolio_race")),
        ("seed", json::uint(config.seed)),
        ("rounds", json::uint(u64::from(config.rounds))),
        ("capacity_den", json::uint(config.den)),
        ("coverage_goal", json::num(config.goal)),
        ("max_fpr", json::num(config.fpr)),
        ("patterns", json::str(config.patterns.name())),
        ("candidates", json::uint(portfolio.candidates().len() as u64)),
        ("truth_cells", json::uint(race_1t.truth_cells as u64)),
        ("winner_reach", json::str(race_1t.winner.reach.to_string())),
        ("winner_strategy", json::str(race_1t.winner_strategy.name())),
        ("winner_cost_ms", json::num(round2(race_1t.winner_cost.as_ms()))),
        ("coverage", json::num(round4(race_1t.coverage))),
        ("cancelled_lanes", json::uint(race_1t.cancelled_lanes() as u64)),
        ("makespan_ms", json::num(round2(makespan_ms))),
        ("best_solo_ms", json::num(round2(best_solo.cost.as_ms()))),
        ("grid_total_ms", json::num(round2(grid_total_ms))),
        ("ratio_vs_best", json::num(round4(ratio_vs_best))),
        ("ratio_vs_grid", json::num(round4(ratio_vs_grid))),
        ("solo_grid", json::Value::Arr(solo_records)),
        ("bytes_identical_1t_4t", json::Value::Bool(bytes_identical)),
        ("cores", json::uint(cores as u64)),
        ("wall_1t_ms", json::num(round2(wall_1t_ms))),
        ("wall_4t_ms", json::num(round2(wall_4t_ms))),
        ("wall_speedup", json::num(round2(wall_speedup))),
        (
            "gate",
            json::obj([
                ("requested", json::Value::Bool(config.gate)),
                ("overhead_ok", json::Value::Bool(overhead_ok)),
                ("grid_ok", json::Value::Bool(grid_ok)),
                ("multicore", json::Value::Bool(multicore)),
                ("speedup_enforced", json::Value::Bool(multicore)),
                ("speedup_ok", json::Value::Bool(speedup_ok)),
            ]),
        ),
    ]);
    if let Some(path) = &config.out {
        std::fs::write(path, record.encode() + "\n").expect("write --out path");
        println!("  wrote {path}");
    } else {
        println!("  {}", record.encode());
    }

    if config.gate {
        if !overhead_ok {
            eprintln!(
                "portfolio_race: GATE FAILED — makespan {ratio_vs_best:.4}x best solo \
                 > {GATE_OVERHEAD}x"
            );
            return ExitCode::FAILURE;
        }
        if !grid_ok {
            eprintln!(
                "portfolio_race: GATE FAILED — makespan {makespan_ms:.1} ms not strictly \
                 below the grid total {grid_total_ms:.1} ms"
            );
            return ExitCode::FAILURE;
        }
        if multicore && !speedup_ok {
            eprintln!(
                "portfolio_race: GATE FAILED — no wall-time speedup at 4 threads \
                 ({wall_speedup:.2}x) on a {cores}-core host"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}
