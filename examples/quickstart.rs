//! Quickstart: profile a simulated LPDDR4 chip with brute force and with
//! reach profiling, and compare the paper's three key metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples narrate to stdout and fail loudly: panics and prints are the
// point of a runnable walkthrough.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing, clippy::print_stdout)]

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::metrics::ProfileMetrics;
use reaper::core::profile::FailureProfile;
use reaper::core::profiler::{PatternSet, Profiler};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

fn main() {
    // A simulated 2GB-equivalent Vendor B chip (1/8 capacity for speed).
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
        2024,
    );

    // The system wants to run at 1024ms instead of the default 64ms.
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    println!("target conditions: {target}");

    // Ground truth: the cells that can actually fail at the target
    // (oracle view into the simulator, for metric computation only).
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.01,
    ));
    println!("ground-truth failing cells at target: {}", truth.len());

    // Brute-force profiling: Algorithm 1 at the target conditions.
    let mut harness = TestHarness::new(chip.clone(), target.ambient, 7);
    let brute = Profiler::brute_force(target, 8, PatternSet::Standard).run(&mut harness);
    let brute_metrics = ProfileMetrics::evaluate(&brute.profile, &truth).with_runtime(brute.runtime);
    println!("\nbrute force (8 iterations):   {brute_metrics}");

    // Reach profiling: the paper's headline +250ms configuration.
    let mut harness = TestHarness::new(chip, target.ambient, 7);
    let reach = Profiler::reach(
        target,
        ReachConditions::paper_headline(),
        8,
        PatternSet::Standard,
    )
    .run(&mut harness);
    let reach_metrics = ProfileMetrics::evaluate(&reach.profile, &truth).with_runtime(reach.runtime);
    println!("reach +250ms (8 iterations):  {reach_metrics}");

    println!(
        "\nreach profiling found {} of {} true failures ({:+} false positives) — \
         the false positives are the price of coverage (paper §6).",
        reach_metrics.true_positives,
        truth.len(),
        reach_metrics.false_positives
    );
}
