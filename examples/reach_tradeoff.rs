//! Explore the coverage / false-positive / runtime tradeoff space around a
//! target operating point and pick reach conditions under a false-positive
//! budget — the paper's §6.1 analysis as a library workflow.
//!
//! ```text
//! cargo run --release --example reach_tradeoff
//! ```

// Examples narrate to stdout and fail loudly: panics and prints are the
// point of a runnable walkthrough.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing, clippy::print_stdout)]

use reaper::core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper::core::TargetConditions;
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{RetentionConfig, SimulatedChip};

fn main() {
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
        99,
    );
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));

    let deltas_interval: Vec<Ms> = [0.0, 125.0, 250.0, 500.0].map(Ms::new).to_vec();
    let deltas_temp = [0.0, 5.0];

    println!("exploring reach space around {target} ...\n");
    let analysis = TradeoffAnalysis::explore(
        &chip,
        target,
        &deltas_interval,
        &deltas_temp,
        ExploreOptions {
            profile_iterations: 8,
            ground_truth: GroundTruth::Empirical { iterations: 16 },
            coverage_goal: 0.9,
            max_runtime_iterations: 48,
            seed: 11,
        },
    );

    println!("{:>8} {:>10} {:>10} {:>8} {:>9}", "Δtemp", "Δinterval", "coverage", "FPR", "speedup");
    for p in &analysis.points {
        println!(
            "{:>8} {:>10} {:>9.1}% {:>7.1}% {:>8.2}x",
            format!("{:+.1}°C", p.reach.delta_temp),
            format!("{:+}", p.reach.delta_interval),
            p.coverage * 100.0,
            p.false_positive_rate * 100.0,
            p.speedup(),
        );
    }

    // §6.1.2: pick the fastest point that keeps FPR tractable.
    for max_fpr in [0.25, 0.50, 0.90] {
        match analysis.select(0.95, max_fpr) {
            Some(p) => println!(
                "\nbest under FPR ≤ {:.0}%: {} → {:.2}x speedup at {:.1}% coverage",
                max_fpr * 100.0,
                p.reach,
                p.speedup(),
                p.coverage * 100.0
            ),
            None => println!("\nno reach point satisfies FPR ≤ {:.0}%", max_fpr * 100.0),
        }
    }
}
