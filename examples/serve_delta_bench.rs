//! Delta-bandwidth benchmark for the streaming-profile endpoints.
//!
//! Starts an in-process server, seeds one profile log with a dense
//! synthetic snapshot, then replays re-profiling epochs at a fixed
//! churn rate. After every push a tracking client fetches
//! `GET /v1/profiles/{id}/delta?since=<prev>` and the full profile, and
//! the benchmark reports the byte ratio between the two — the bandwidth
//! a delta-aware subscriber saves over full refetches.
//!
//! The measurement is deliberately clock-free: every byte count is a
//! deterministic function of the seed, so the committed record in
//! `BENCH_serve.json` is exactly reproducible.
//!
//! ```text
//! cargo run --release --example serve_delta_bench -- --epochs 20
//! serve_delta_bench [--epochs N] [--cells N] [--churn-pct P]
//!                   [--gate] [--merge PATH]
//!   --gate         exit nonzero unless delta bytes < 10% of full bytes
//!   --merge PATH   update the "delta" entry of a BENCH_serve.json file
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    clippy::print_stdout,
    clippy::print_stderr,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

use std::collections::BTreeSet;
use std::process::ExitCode;

use reaper_core::{FailureProfile, ProfilingRequest};
use reaper_exec::rng::SplitMix64;
use reaper_serve::json::{self, Value};
use reaper_serve::{Client, DeltaFetch, ProfileFetch, Server, ServerConfig};

/// The delta:full byte-ratio ceiling `--gate` enforces.
const GATE_RATIO: f64 = 0.10;

struct Config {
    epochs: u64,
    cells: usize,
    churn_pct: f64,
    gate: bool,
    merge: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        epochs: 20,
        cells: 20_000,
        churn_pct: 1.0,
        gate: false,
        merge: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--epochs" => {
                config.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs takes a number");
            }
            "--cells" => {
                config.cells = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cells takes a number");
            }
            "--churn-pct" => {
                config.churn_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--churn-pct takes a number");
            }
            "--gate" => config.gate = true,
            "--merge" => {
                config.merge = Some(it.next().expect("--merge takes a path").clone());
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    config
}

/// A small job to create the profile log the pushes append to.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

/// One churn step: remove `n/2` existing cells, add `n/2` fresh ones.
fn churn(cells: &mut BTreeSet<u64>, n: usize, rng: &mut SplitMix64) {
    let removes = n / 2;
    for _ in 0..removes {
        let len = cells.len();
        if len == 0 {
            break;
        }
        let victim = *cells
            .iter()
            .nth(usize::try_from(rng.next_u64()).unwrap_or(usize::MAX) % len)
            .expect("nonempty set has an nth element");
        cells.remove(&victim);
    }
    let mut added = 0;
    while added < n - removes {
        if cells.insert(rng.next_u64() % 1_000_000_000) {
            added += 1;
        }
    }
}

fn main() -> ExitCode {
    let config = parse_args();
    let server = Server::start(ServerConfig {
        workers: 1,
        // Keep the chain alive for the whole run: this measures codec
        // bandwidth for a subscriber that keeps up, not compaction
        // resyncs (EXPERIMENTS.md reports those separately).
        compact_max_deltas: usize::try_from(config.epochs).unwrap_or(usize::MAX) + 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(server.local_addr());

    let job = client
        .submit(&quick_request(7777))
        .expect("submit")
        .job_id;
    client
        .wait_for_profile(&job, std::time::Duration::from_millis(10), 1500)
        .expect("job finishes");

    // Re-base the log on a dense synthetic snapshot so churn_pct is
    // exact and the full-profile size is realistic.
    let mut rng = SplitMix64::new(0x0DE17A);
    let mut cells: BTreeSet<u64> = BTreeSet::new();
    while cells.len() < config.cells {
        cells.insert(rng.next_u64() % 1_000_000_000);
    }
    let receipt = client
        .push_epoch(&job, &FailureProfile::from_cells(cells.iter().copied()).to_bytes())
        .expect("seed push");
    let mut prev_epoch = receipt.epoch;

    let churn_cells = ((config.cells as f64) * config.churn_pct / 100.0).round() as usize;
    let mut delta_bytes_total = 0u64;
    let mut full_bytes_total = 0u64;
    for _ in 0..config.epochs {
        churn(&mut cells, churn_cells.max(2), &mut rng);
        let push = client
            .push_epoch(&job, &FailureProfile::from_cells(cells.iter().copied()).to_bytes())
            .expect("push epoch");
        assert!(push.changed, "churned snapshot must move the head");
        match client.delta_since(&job, prev_epoch).expect("delta fetch") {
            DeltaFetch::Chain { bytes, epoch, .. } => {
                assert_eq!(epoch, push.epoch);
                delta_bytes_total += bytes.len() as u64;
            }
            other => panic!("tracking client must get a chain, got {other:?}"),
        }
        match client.profile_conditional(&job, None).expect("full fetch") {
            ProfileFetch::Fresh { bytes, .. } => full_bytes_total += bytes.len() as u64,
            other => panic!("unconditional GET must serve bytes, got {other:?}"),
        }
        prev_epoch = push.epoch;
    }
    server.shutdown();

    let ratio = delta_bytes_total as f64 / full_bytes_total as f64;
    println!(
        "serve_delta: {} cells, {:.2}% churn, {} epochs",
        config.cells, config.churn_pct, config.epochs
    );
    println!(
        "  delta GET bytes {delta_bytes_total}  full GET bytes {full_bytes_total}  \
         ratio {ratio:.4}"
    );

    let record = json::obj([
        ("benchmark", json::str("serve_delta")),
        ("cells", json::uint(config.cells as u64)),
        ("churn_pct", json::num(config.churn_pct)),
        ("epochs", json::uint(config.epochs)),
        ("delta_bytes_total", json::uint(delta_bytes_total)),
        ("full_bytes_total", json::uint(full_bytes_total)),
        ("ratio", json::num((ratio * 10_000.0).round() / 10_000.0)),
    ]);
    if let Some(path) = &config.merge {
        let text = std::fs::read_to_string(path).expect("read merge target");
        let mut doc = match json::parse(&text).expect("merge target is JSON") {
            Value::Obj(map) => map,
            _ => panic!("merge target must be a JSON object"),
        };
        doc.insert("delta".to_string(), record);
        std::fs::write(path, Value::Obj(doc).encode() + "\n").expect("write merge target");
        println!("  merged `delta` entry into {path}");
    } else {
        println!("  {}", record.encode());
    }

    if config.gate && ratio >= GATE_RATIO {
        eprintln!("serve_delta: GATE FAILED — ratio {ratio:.4} >= {GATE_RATIO}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
