//! Closed-loop load generator for `reaper-serve`.
//!
//! Starts an in-process server, seeds it with a handful of completed
//! jobs, then drives N client threads in a closed loop (each thread
//! issues the next request only after the previous response) over a
//! fixed request mix — cache-hit profile reads, job-status reads, and
//! health checks — for a wall-clock budget. Prints throughput and
//! p50/p99 latency per request class, and optionally writes the summary
//! as JSON (`--out BENCH_serve.json`).
//!
//! ```text
//! cargo run --release --example serve_loadgen -- --seconds 5 --threads 4
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    clippy::print_stdout,
    clippy::print_stderr,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use reaper_core::ProfilingRequest;
use reaper_serve::json;
use reaper_serve::{Client, Server, ServerConfig};

/// Seeds for the resident jobs every thread reads back.
const JOB_SEEDS: [u64; 4] = [101, 202, 303, 404];

/// A small job so the warm-up completes in seconds.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

/// Latency samples for one request class, in microseconds.
#[derive(Default)]
struct Samples {
    micros: Vec<u64>,
}

impl Samples {
    fn record(&mut self, started_at: Instant) {
        let us = u64::try_from(started_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.micros.push(us);
    }

    fn merge(&mut self, other: Samples) {
        self.micros.extend(other.micros);
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.micros.is_empty() {
            return 0;
        }
        let rank = ((self.micros.len() - 1) as f64 * p).round() as usize;
        self.micros[rank.min(self.micros.len() - 1)]
    }

    fn count(&self) -> usize {
        self.micros.len()
    }
}

fn parse_args() -> (u64, usize, Option<String>) {
    let mut seconds = 5u64;
    let mut threads = 4usize;
    let mut out = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .expect("usage: serve_loadgen [--seconds N] [--threads N] [--out FILE]");
        match flag.as_str() {
            "--seconds" => seconds = value.parse().expect("--seconds takes an integer"),
            "--threads" => threads = value.parse().expect("--threads takes an integer"),
            "--out" => out = Some(value.clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    (seconds.max(1), threads.max(1), out)
}

fn main() {
    let (seconds, threads, out_path) = parse_args();

    let server = Server::start(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Warm-up: submit the resident jobs and wait until all are cached.
    let mut warm = Client::new(addr);
    let job_ids: Vec<String> = JOB_SEEDS
        .iter()
        .map(|&s| warm.submit(&quick_request(s)).expect("submit").job_id)
        .collect();
    for id in &job_ids {
        warm.wait_for_profile(id, Duration::from_millis(10), 3000)
            .expect("warm-up job finishes");
    }
    println!(
        "loadgen: {} resident jobs warm; driving {threads} threads for {seconds}s",
        job_ids.len()
    );

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (profile_reads, status_reads, health_checks) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stop = &stop;
                let job_ids = &job_ids;
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut profile = Samples::default();
                    let mut status = Samples::default();
                    let mut health = Samples::default();
                    let mut i = t; // stagger the mix across threads
                    while !stop.load(Ordering::Relaxed) {
                        let id = &job_ids[i % job_ids.len()];
                        // Mix: 8 profile reads : 1 status read : 1 healthz.
                        match i % 10 {
                            8 => {
                                let t0 = Instant::now();
                                client.job_status(id).expect("status read");
                                status.record(t0);
                            }
                            9 => {
                                let t0 = Instant::now();
                                client.healthz().expect("health check");
                                health.record(t0);
                            }
                            _ => {
                                let t0 = Instant::now();
                                let bytes = client
                                    .profile_bytes(id)
                                    .expect("profile read")
                                    .expect("job is resident");
                                assert!(!bytes.is_empty());
                                profile.record(t0);
                            }
                        }
                        i += 1;
                    }
                    (profile, status, health)
                })
            })
            .collect();

        while started.elapsed() < Duration::from_secs(seconds) {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);

        let mut profile = Samples::default();
        let mut status = Samples::default();
        let mut health = Samples::default();
        for h in handles {
            let (p, s, hl) = h.join().expect("worker thread");
            profile.merge(p);
            status.merge(s);
            health.merge(hl);
        }
        (profile, status, health)
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut classes = [
        ("profile_read_cache_hit", profile_reads),
        ("job_status_read", status_reads),
        ("healthz", health_checks),
    ];
    let total: usize = classes.iter().map(|(_, s)| s.count()).sum();
    println!(
        "loadgen: {total} requests in {elapsed:.2}s = {:.0} req/s overall",
        total as f64 / elapsed
    );

    let mut class_values = Vec::new();
    for (name, samples) in &mut classes {
        samples.micros.sort_unstable();
        let rps = samples.count() as f64 / elapsed;
        let p50 = samples.percentile(0.50);
        let p99 = samples.percentile(0.99);
        println!(
            "  {name:<24} {:>8} reqs  {rps:>8.0} req/s  p50 {p50:>5} µs  p99 {p99:>5} µs",
            samples.count()
        );
        class_values.push(json::obj([
            ("class", json::str(*name)),
            ("requests", json::uint(samples.count() as u64)),
            ("req_per_s", json::num((rps * 10.0).round() / 10.0)),
            ("p50_us", json::uint(p50)),
            ("p99_us", json::uint(p99)),
        ]));
    }

    let snap = server.metrics_snapshot();
    let doc = json::obj([
        ("benchmark", json::str("serve_loadgen")),
        ("threads", json::uint(threads as u64)),
        ("duration_s", json::num((elapsed * 100.0).round() / 100.0)),
        ("resident_jobs", json::uint(job_ids.len() as u64)),
        ("total_requests", json::uint(total as u64)),
        (
            "total_req_per_s",
            json::num(((total as f64 / elapsed) * 10.0).round() / 10.0),
        ),
        ("cache_hits", json::uint(snap.cache_hits)),
        ("classes", json::Value::Arr(class_values)),
    ]);
    if let Some(path) = out_path {
        std::fs::write(&path, doc.encode() + "\n").expect("write --out file");
        println!("loadgen: wrote {path}");
    } else {
        println!("{}", doc.encode());
    }

    server.shutdown();
}
