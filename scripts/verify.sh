#!/usr/bin/env bash
# Tier-1 verification gate plus an end-to-end smoke run.
#
#   scripts/verify.sh          # build + test + headline smoke
#
# Must pass before every merge; see ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --offline

echo "== static analysis: lint fixture + analyzer suites =="
cargo test -q --offline -p reaper-lint

echo "== static analysis: reaper-lint (D1/D2/P1/C1 + L1-L4 + M0/M1) =="
cargo run -q --offline -p reaper-lint
cargo run -q --offline -p reaper-lint -- --json=target/lint-report.json

echo "== static analysis: clippy deny-wall =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier-1: tests =="
cargo test -q --offline --workspace

echo "== bench-trial: plan-vs-scalar equality (property + smoke) =="
cargo test --release -q --offline -p reaper-retention --test plan_equivalence
cargo run --release -q --offline -p reaper-bench --bin trial_bench -- --smoke

echo "== bench-trial: thread-scaling gate (compiled + batch, 4t >= 1t) =="
cargo run --release -q --offline -p reaper-bench --bin trial_bench -- --gate --json=target/trial_gate.json

echo "== service: reaper-serve smoke (dedup + bit-identical bytes) =="
cargo test --release -q --offline -p reaper-serve --test smoke

echo "== service: bounded load run =="
cargo run --release -q --offline --example serve_loadgen -- --seconds 5 --threads 4

echo "== serve-delta: codec fuzz (RPF1 + RPD1 decoders never panic) =="
cargo test --release -q --offline -p reaper-core --test rpf1_fuzz
cargo test --release -q --offline -p reaper-retention --test delta_codec

echo "== serve-delta: epoch-log compaction equivalence (byte-identical prefixes) =="
cargo test --release -q --offline -p reaper-serve --test epoch_log

echo "== serve-delta: protocol conformance (ETag/304, delta, watch; 1 + 4 workers) =="
cargo test --release -q --offline -p reaper-serve --test conformance

echo "== serve-delta: bandwidth gate (delta GETs < 10% of full bytes at 1% churn) =="
cargo run --release -q --offline --example serve_delta_bench -- --epochs 20 --gate

echo "== fleet: rendezvous routing properties =="
cargo test --release -q --offline -p reaper-fleet --test routing

echo "== fleet: byte equality at 1 and 4 shards =="
cargo test --release -q --offline -p reaper-fleet --test byte_equality

echo "== fleet: failover conformance (503 -> restart -> 304, zero recompute) =="
cargo test --release -q --offline -p reaper-fleet --test failover

echo "== fleet: loadgen gate (aggregate throughput + connection ladder) =="
cargo run --release -q --offline --example fleet_loadgen -- --seconds 3 --gate

echo "== portfolio: race determinism (threads x orderings x priors) =="
cargo test --release -q --offline -p reaper-exec cancel
cargo test --release -q --offline -p reaper-portfolio

echo "== bench-portfolio: racing gate (<=1.05x best solo, < sequential grid) =="
cargo run --release -q --offline --example portfolio_bench -- --gate

echo "== smoke: headline experiment (quick scale) =="
cargo run --release --offline -p reaper-conformance --bin experiments -- headline --quick

echo "== conformance: golden-table regression (Tier A) =="
cargo run --release --offline -p reaper-conformance --bin experiments -- --check all

echo "== conformance: paper-shape acceptance (Tier B) =="
cargo run --release --offline -p reaper-conformance --bin experiments -- --shape all

echo "verify: OK"
