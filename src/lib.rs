//! **REAPER** — a full Rust reproduction of *"The Reach Profiler (REAPER):
//! Enabling the Mitigation of DRAM Retention Failures via Profiling at
//! Aggressive Conditions"* (Patel, Kim, Mutlu — ISCA 2017).
//!
//! This façade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `reaper-core` | reach/brute-force profilers, metrics, ECC UBER model, longevity, overhead models, tradeoff explorer |
//! | [`retention`] | `reaper-retention` | Monte-Carlo DRAM retention physics (the 368-chip study substitute) |
//! | [`softmc`] | `reaper-softmc` | SoftMC-style test harness + PID thermal chamber |
//! | [`dram_model`] | `reaper-dram-model` | geometry, addressing, vendors, units, data patterns |
//! | [`mitigation`] | `reaper-mitigation` | SECDED codec, ArchShield FaultMap, RAIDR bins, row map-out |
//! | [`memsim`] | `reaper-memsim` | cycle-level LPDDR4 memory-system simulator |
//! | [`power`] | `reaper-power` | LPDDR4 DRAM power model |
//! | [`workloads`] | `reaper-workloads` | SPEC-like synthetic workload mixes |
//! | [`analysis`] | `reaper-analysis` | distributions, fits, summaries |
//! | [`exec`] | `reaper-exec` | zero-dependency deterministic parallel execution substrate |
//!
//! # Quickstart
//!
//! ```
//! use reaper::core::conditions::{ReachConditions, TargetConditions};
//! use reaper::core::profiler::{PatternSet, Profiler};
//! use reaper::dram_model::{Celsius, Ms, Vendor};
//! use reaper::retention::{RetentionConfig, SimulatedChip};
//! use reaper::softmc::TestHarness;
//!
//! // A simulated LPDDR4 chip and its test infrastructure.
//! let chip = SimulatedChip::new(
//!     RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 32),
//!     42,
//! );
//! let mut harness = TestHarness::new(chip, Celsius::new(45.0), 42);
//!
//! // Profile for a 1024ms target by reaching 250ms above it.
//! let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
//! let run = Profiler::reach(
//!     target,
//!     ReachConditions::paper_headline(),
//!     4,
//!     PatternSet::Standard,
//! )
//! .run(&mut harness);
//! assert!(!run.profile.is_empty());
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure in the paper.

pub use reaper_analysis as analysis;
pub use reaper_core as core;
pub use reaper_dram_model as dram_model;
pub use reaper_exec as exec;
pub use reaper_memsim as memsim;
pub use reaper_mitigation as mitigation;
pub use reaper_power as power;
pub use reaper_retention as retention;
pub use reaper_softmc as softmc;
pub use reaper_workloads as workloads;
