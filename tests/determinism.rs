//! Integration: every stochastic component is deterministic in its seed —
//! the property that makes the whole reproduction reproducible.

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::profiler::{PatternSet, Profiler};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{ChipPopulation, RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;
use reaper::workloads::WorkloadMix;

#[test]
fn full_profiling_runs_are_bit_identical_across_processes_worth_of_state() {
    let make = || {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::C).with_capacity_scale(1, 32),
            0xD5,
        );
        let mut harness = TestHarness::new(chip, Celsius::new(45.0), 0xD5);
        Profiler::reach(
            TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0)),
            ReachConditions::new(Ms::new(250.0), 5.0),
            3,
            PatternSet::Standard,
        )
        .run(&mut harness)
    };
    let a = make();
    let b = make();
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn seeds_change_outcomes() {
    let run_with = |seed: u64| {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::A).with_capacity_scale(1, 32),
            seed,
        );
        let mut harness = TestHarness::new(chip, Celsius::new(45.0), seed);
        Profiler::brute_force(
            TargetConditions::new(Ms::new(2048.0), Celsius::new(45.0)),
            2,
            PatternSet::Standard,
        )
        .run(&mut harness)
        .profile
    };
    assert_ne!(run_with(1), run_with(2));
}

#[test]
fn populations_and_workloads_are_seed_deterministic() {
    let p1 = ChipPopulation::sample_study(6, 77);
    let p2 = ChipPopulation::sample_study(6, 77);
    for (a, b) in p1.chips().iter().zip(p2.chips()) {
        assert_eq!(a.cells(), b.cells());
    }

    let m1 = WorkloadMix::paper_mixes(13);
    let m2 = WorkloadMix::paper_mixes(13);
    for (a, b) in m1.iter().zip(&m2) {
        assert_eq!(a.names(), b.names());
        assert_eq!(a.traces(), b.traces());
    }
}
