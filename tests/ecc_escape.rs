//! Integration: SECDED absorbs the failures that escape profiling — the
//! paper's §6.2 argument, executed bit-for-bit through the real codec.

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::ecc::EccStrength;
use reaper::core::profile::FailureProfile;
use reaper::core::profiler::{PatternSet, Profiler};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::mitigation::secded::{DecodeOutcome, Secded};
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

#[test]
fn escaped_cells_are_single_bit_correctable_until_they_collide() {
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
        0xECC,
    );
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.01,
    ));

    // A deliberately weak profile (few iterations at target) so escapes
    // exist.
    let mut harness = TestHarness::new(chip, target.ambient, 5);
    let run = Profiler::reach(
        target,
        ReachConditions::brute_force(),
        2,
        PatternSet::Standard,
    )
    .run(&mut harness);

    let escaped: Vec<u64> = truth
        .iter()
        .filter(|c| !run.profile.contains(*c))
        .collect();
    assert!(!escaped.is_empty(), "expected some escapes from a weak profile");

    // Group escapes by 64-bit data word; SECDED corrects words with one
    // escaped bit and detects (but cannot correct) multi-bit words.
    use std::collections::HashMap;
    let mut words: HashMap<u64, Vec<u32>> = HashMap::new();
    for cell in &escaped {
        words.entry(cell / 64).or_default().push((cell % 64) as u32);
    }

    for bits in words.values() {
        let data = 0x5AA5_1234_ABCD_EF01u64;
        let mut cw = Secded::encode(data);
        // A retention failure flips the stored (data-region) bit; map the
        // in-word bit position onto a data bit of the codeword by
        // re-encoding flipped data for single errors, or flipping codeword
        // bits directly for the general case.
        for (i, &b) in bits.iter().enumerate() {
            let _ = i;
            // Data bit b corresponds to some codeword position; flipping
            // the data bit pre-encode and comparing is equivalent to a
            // codeword flip at its position. Flip via data-domain XOR:
            let flipped_data = data ^ (1u64 << b);
            let flipped_cw = Secded::encode(flipped_data);
            let diff = cw.bits() ^ flipped_cw.bits();
            // Apply only the single data-bit's codeword position (the
            // lowest differing non-parity bit).
            let pos = diff.trailing_zeros();
            cw = cw.flip(pos);
        }
        match bits.len() {
            1 => match Secded::decode(cw) {
                DecodeOutcome::Corrected(d, _) => assert_eq!(d, data),
                other => panic!("single escape not corrected: {other:?}"),
            },
            _ => {
                // ≥2 escaped bits in one word: at minimum it must never
                // silently decode to wrong data as "Clean".
                match Secded::decode(cw) {
                    DecodeOutcome::Clean(d) => assert_eq!(d, data, "silent corruption"),
                    DecodeOutcome::Uncorrectable | DecodeOutcome::Corrected(..) => {}
                }
            }
        }
    }
}

#[test]
fn tolerable_rber_bounds_actual_escape_rate_at_high_coverage() {
    // With 99%-coverage reach profiling, the escape BER must sit far below
    // the ECC-2 tolerable RBER (Table 1) — the §6.2.2 safety argument.
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
        0xECD,
    );
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.01,
    ));
    let mut harness = TestHarness::new(chip, target.ambient, 6);
    let run = Profiler::reach(
        target,
        ReachConditions::paper_headline(),
        8,
        PatternSet::Standard,
    )
    .run(&mut harness);

    let escaped = truth.difference_count(&run.profile);
    let escape_ber = escaped as f64 / harness.chip().config().represented_bits as f64;
    let budget = EccStrength::ecc2().tolerable_rber(1e-15);
    assert!(
        escape_ber < budget,
        "escape BER {escape_ber:.3e} exceeds ECC-2 budget {budget:.3e}"
    );
}
