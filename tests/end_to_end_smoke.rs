//! Integration: memory-system simulation + power + workloads + overhead
//! models compose into the Fig. 13 pipeline.

use reaper::core::ecc::EccStrength;
use reaper::core::longevity::LongevityModel;
use reaper::core::overhead::{ipc_with_overhead, module_bytes, OverheadModel};
use reaper::core::TargetConditions;
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::memsim::{simulate, weighted_speedup, SimConfig};
use reaper::power::PowerModel;
use reaper::retention::RetentionConfig;
use reaper::workloads::WorkloadMix;

#[test]
fn extended_interval_beats_baseline_and_reaper_beats_brute_force() {
    let chip_gbit = 64;
    let mix = &WorkloadMix::random_mixes(1, 4, 1024, 9)[0];
    let instructions = 120_000;

    let base_cfg = SimConfig::lpddr4_3200(chip_gbit, Some(Ms::new(64.0)));
    let alone: Vec<f64> = mix
        .traces()
        .iter()
        .map(|t| simulate(&base_cfg, std::slice::from_ref(t), instructions).ipc[0])
        .collect();
    let base = simulate(&base_cfg, mix.traces(), instructions);
    let ws_base = weighted_speedup(&base.ipc, &alone);

    let ext_cfg = SimConfig::lpddr4_3200(chip_gbit, Some(Ms::new(1024.0)));
    let ext = simulate(&ext_cfg, mix.traces(), instructions);
    let ws_ext = weighted_speedup(&ext.ipc, &alone);
    let ideal_gain = ws_ext / ws_base - 1.0;
    assert!(ideal_gain > 0.0, "extended interval must help: {ideal_gain}");

    // Profiling overhead at the Eq. 7 schedule.
    let retention = RetentionConfig::for_vendor(Vendor::B);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let longevity = LongevityModel::for_system(
        EccStrength::secded(),
        module_bytes(chip_gbit),
        1e-15,
        &retention,
        target,
        1.0,
    )
    .longevity()
    .unwrap();
    let round = OverheadModel::new(Ms::new(1024.0), 6, 16, module_bytes(chip_gbit));
    let brute = ipc_with_overhead(1.0 + ideal_gain, round.time_fraction(longevity)) - 1.0;
    let reaper =
        ipc_with_overhead(1.0 + ideal_gain, round.time_fraction_with_speedup(longevity, 2.5))
            - 1.0;

    assert!(reaper > brute, "REAPER {reaper} must beat brute {brute}");
    assert!(reaper <= ideal_gain + 1e-12, "ideal bounds REAPER");

    // Power: refresh reduction shows up in the command-level model.
    let pm = PowerModel::lpddr4(chip_gbit, 32);
    let p_base = pm.breakdown(&base.stats, base.elapsed_secs());
    let p_ext = pm.breakdown(&ext.stats, ext.elapsed_secs());
    assert!(
        p_ext.refresh_w < p_base.refresh_w / 4.0,
        "refresh power must collapse: {} -> {}",
        p_base.refresh_w,
        p_ext.refresh_w
    );
    assert!(p_ext.total_w() < p_base.total_w());
}

#[test]
fn weighted_speedup_uses_all_cores() {
    let mix = &WorkloadMix::random_mixes(1, 4, 512, 3)[0];
    let cfg = SimConfig::lpddr4_3200(8, Some(Ms::new(64.0)));
    let r = simulate(&cfg, mix.traces(), 30_000);
    assert_eq!(r.ipc.len(), 4);
    let ws = weighted_speedup(&r.ipc, &r.ipc);
    assert!((ws - 4.0).abs() < 1e-9);
}
