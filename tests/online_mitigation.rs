//! Integration: the §7.1 online controller keeps a mitigation stack
//! (ArchShield) current across simulated days, and beats a passive
//! scrubber maintained over the same period.

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::ecc::EccStrength;
use reaper::core::longevity::LongevityModel;
use reaper::core::online::{OnlineConfig, OnlineController};
use reaper::core::profile::FailureProfile;
use reaper::core::profiler::PatternSet;
use reaper::dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper::mitigation::archshield::ArchShield;
use reaper::mitigation::scrubber::EccScrubber;
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

fn setup() -> (RetentionConfig, TargetConditions) {
    (
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
        TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0)),
    )
}

#[test]
fn controller_keeps_archshield_current_across_days() {
    let (retention, target) = setup();
    let chip = SimulatedChip::new(retention.clone(), 0x0411);
    let mut harness = TestHarness::new(chip, target.ambient, 9);
    let longevity = LongevityModel::for_system(
        EccStrength::secded(),
        retention.represented_bits / 8,
        1e-15,
        &retention,
        target,
        0.99,
    );
    let mut controller = OnlineController::new(OnlineConfig {
        target,
        reach: ReachConditions::paper_headline(),
        iterations: 4,
        patterns: PatternSet::Standard,
        longevity,
    });

    let shield = ArchShield::new(retention.represented_bits / 64, 0.04).unwrap();
    let mut escapes = Vec::new();
    for _ in 0..3 {
        let report = controller.idle_and_run(&mut harness);
        let map = shield.with_profile(controller.profile()).unwrap();
        assert!(map.fault_count() > 0);
        // Every profiled cell's word is covered by the installed map.
        for cell in report.run.profile.iter().take(200) {
            assert!(map.is_remapped(cell / 64));
        }
        // Oracle escape count at target conditions right after the round.
        let truth = FailureProfile::from_cells(harness.chip_mut().failing_set_worst_case(
            target.interval,
            target.dram_temp(),
            0.5,
        ));
        escapes.push(truth.difference_count(controller.profile()));
    }
    // High-probability failures must be almost fully covered right after
    // each round.
    for (i, &e) in escapes.iter().enumerate() {
        assert!(e <= 5, "round {i}: {e} escapes");
    }
    // The paid overhead is far below the Fig. 11 danger zone.
    assert!(controller.overhead_fraction(&harness) < 0.01);
}

#[test]
fn active_controller_beats_passive_scrubber_over_same_period() {
    let (retention, target) = setup();
    let truth_chip = SimulatedChip::new(retention.clone(), 0x0412);
    let truth = FailureProfile::from_cells(truth_chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.05,
    ));

    // Active: one controller round.
    let mut harness = TestHarness::new(truth_chip.clone(), target.ambient, 10);
    let longevity = LongevityModel::for_system(
        EccStrength::secded(),
        retention.represented_bits / 8,
        1e-15,
        &retention,
        target,
        0.99,
    );
    let mut controller = OnlineController::new(OnlineConfig {
        target,
        reach: ReachConditions::paper_headline(),
        iterations: 4,
        patterns: PatternSet::Standard,
        longevity,
    });
    let _ = controller.run_round(&mut harness);
    let active_cov =
        controller.profile().intersection_count(&truth) as f64 / truth.len() as f64;

    // Passive: 48 scrubs of the same chip under fixed application data.
    let mut chip = truth_chip;
    let mut scrubber = EccScrubber::new();
    for _ in 0..48 {
        let _ = scrubber.scrub(&mut chip, DataPattern::row_stripe(), target.interval, target.dram_temp());
    }
    let passive_cov =
        scrubber.profile().intersection_count(&truth) as f64 / truth.len() as f64;

    assert!(
        active_cov > passive_cov + 0.25,
        "active {active_cov:.3} vs passive {passive_cov:.3}"
    );
    assert!(active_cov > 0.9, "active coverage {active_cov}");
}
