//! Integration: results are **bit-identical at any thread count**.
//!
//! The parallel substrate (`reaper-exec`) must be an implementation detail:
//! retention trials derive every random draw from a per-(seed, trial, cell)
//! hash lane rather than a shared sequential stream, so partitioning the
//! work across threads cannot change any outcome. These tests run the same
//! workloads at 1 and 4 workers and compare outputs byte for byte.
//!
//! All tests in this file share one process, and the thread-count override
//! is global, so each test serializes on `OVERRIDE_LOCK` and restores the
//! default before returning.

// Test helpers may unwrap freely: a failed unwrap IS the test failing
// (`clippy.toml` only exempts `#[test]` functions themselves).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Mutex;

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::profiler::{PatternSet, Profiler, ProfilingRun};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;
use reaper_bench::{Scale, Table};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once at 1 worker and once at 4, restoring the default after.
fn at_thread_counts<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    reaper::exec::set_thread_count(Some(1));
    let sequential = f();
    reaper::exec::set_thread_count(Some(4));
    let parallel = f();
    reaper::exec::set_thread_count(None);
    (sequential, parallel)
}

fn profile_sweep() -> ProfilingRun {
    // 1/8 capacity keeps the candidate window comfortably above the
    // sequential-fallback threshold, so the 4-worker run genuinely takes
    // the parallel path.
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
        0xA11CE,
    );
    let mut harness = TestHarness::new(chip, Celsius::new(45.0), 0xA11CE);
    Profiler::reach(
        TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0)),
        ReachConditions::new(Ms::new(250.0), 5.0),
        3,
        PatternSet::Standard,
    )
    .run(&mut harness)
}

#[test]
fn profiling_sweep_is_bit_identical_across_thread_counts() {
    let (seq, par) = at_thread_counts(profile_sweep);
    assert_eq!(seq.profile, par.profile);
    assert_eq!(seq.runtime, par.runtime);
    assert_eq!(seq.iterations, par.iterations);
}

#[test]
fn raw_trials_are_bit_identical_across_thread_counts() {
    let run = || {
        let mut chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::C).with_capacity_scale(1, 4),
            0xBEE,
        );
        let mut all = Vec::new();
        for iteration in 0..2u64 {
            for pattern in PatternSet::Standard.for_iteration(iteration) {
                for &iv in &[512.0, 1024.0, 2048.0, 4096.0] {
                    let out = chip.retention_trial(pattern, Ms::new(iv), Celsius::new(48.0));
                    all.push(out.into_vec());
                    chip.advance(Ms::new(iv));
                }
            }
        }
        all
    };
    let (seq, par) = at_thread_counts(run);
    assert_eq!(seq, par);
}

#[test]
fn bench_harness_output_is_bit_identical_across_thread_counts() {
    // fig02 exercises the full stack: population synthesis, per-chip
    // parallel fan-out, and parallel retention trials underneath.
    let (seq, par): (Table, Table) = at_thread_counts(|| reaper_bench::fig02::run(Scale::Quick));
    assert_eq!(seq.to_string(), par.to_string(), "fig02 table diverged");
}
