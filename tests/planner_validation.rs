//! Integration: the §6.3 analytic planner's predictions must agree with
//! the empirical Fig. 9 tradeoff explorer on the same chip.

use reaper::core::planner::{CharacterizeOptions, ChipCharacterization};
use reaper::core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper::core::TargetConditions;
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

#[test]
fn planner_fpr_prediction_matches_empirical_measurement() {
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
        0x91A,
    );
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));

    // Analytic prediction from a cheap characterization pass.
    let mut harness = TestHarness::new(chip.clone(), target.ambient, 1);
    let c = ChipCharacterization::measure(&mut harness, CharacterizeOptions::default());
    let predicted = c.predicted_fpr(target.interval, Ms::new(250.0));

    // Empirical measurement via the Fig. 9 machinery.
    let analysis = TradeoffAnalysis::explore(
        &chip,
        target,
        &[Ms::ZERO, Ms::new(250.0)],
        &[0.0],
        ExploreOptions {
            profile_iterations: 8,
            ground_truth: GroundTruth::Empirical { iterations: 16 },
            coverage_goal: 0.9,
            max_runtime_iterations: 48,
            seed: 2,
        },
    );
    let measured = analysis.points[1].false_positive_rate;

    assert!(
        (predicted - measured).abs() < 0.15,
        "planner predicted FPR {predicted:.3}, explorer measured {measured:.3}"
    );
}

#[test]
fn recommended_reach_stays_within_budget_empirically() {
    let chip = SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::A).with_capacity_scale(1, 8),
        0x91B,
    );
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));

    let mut harness = TestHarness::new(chip.clone(), target.ambient, 3);
    let c = ChipCharacterization::measure(&mut harness, CharacterizeOptions::default());
    let budget = 0.5;
    let reach = c
        .recommend_reach(target.interval, budget)
        .expect("a reach exists under a 50% budget");

    let analysis = TradeoffAnalysis::explore(
        &chip,
        target,
        &[Ms::ZERO, reach.delta_interval],
        &[0.0],
        ExploreOptions {
            profile_iterations: 8,
            ground_truth: GroundTruth::Empirical { iterations: 16 },
            coverage_goal: 0.9,
            max_runtime_iterations: 48,
            seed: 4,
        },
    );
    let p = &analysis.points[1];
    // The empirical FPR honors the planner's budget with modest slack
    // (profiling noise, VRT) and the reach still improves coverage.
    assert!(
        p.false_positive_rate < budget + 0.12,
        "measured FPR {} vs budget {budget}",
        p.false_positive_rate
    );
    assert!(p.coverage > analysis.points[0].coverage - 0.01);
}
