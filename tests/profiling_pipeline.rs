//! Integration: the full profiling → mitigation pipeline across crates.

use reaper::core::conditions::{ReachConditions, TargetConditions};
use reaper::core::metrics::ProfileMetrics;
use reaper::core::profile::FailureProfile;
use reaper::core::profiler::{PatternSet, Profiler};
use reaper::dram_model::{Celsius, Ms, Vendor};
use reaper::mitigation::archshield::ArchShield;
use reaper::mitigation::raidr::Raidr;
use reaper::mitigation::rowmap::RowRemapper;
use reaper::retention::{RetentionConfig, SimulatedChip};
use reaper::softmc::TestHarness;

fn chip() -> SimulatedChip {
    SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
        0xAB,
    )
}

fn target() -> TargetConditions {
    TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0))
}

#[test]
fn reach_profile_feeds_archshield_and_remaps_every_found_word() {
    let chip = chip();
    let mut harness = TestHarness::new(chip, target().ambient, 1);
    let run = Profiler::reach(
        target(),
        ReachConditions::paper_headline(),
        6,
        PatternSet::Standard,
    )
    .run(&mut harness);
    assert!(!run.profile.is_empty());

    let words = harness.chip().config().geometry.density_bits() / 64;
    let shield = ArchShield::new(words, 0.04).unwrap();
    let map = shield.with_profile(&run.profile).unwrap();

    for cell in run.profile.iter() {
        let word = cell / 64;
        assert!(map.is_remapped(word), "cell {cell} word {word} not remapped");
        assert!(map.translate(word) >= shield.usable_words());
    }
    assert!(map.occupancy() < 1.0);
}

#[test]
fn reach_covers_target_ground_truth_better_than_brute_force() {
    let chip = chip();
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target().interval,
        target().dram_temp(),
        0.02,
    ));
    assert!(truth.len() > 50, "ground truth too small: {}", truth.len());

    let mut h1 = TestHarness::new(chip.clone(), target().ambient, 2);
    let brute = Profiler::brute_force(target(), 6, PatternSet::Standard).run(&mut h1);
    let m_brute = ProfileMetrics::evaluate(&brute.profile, &truth);

    let mut h2 = TestHarness::new(chip, target().ambient, 2);
    let reach = Profiler::reach(
        target(),
        ReachConditions::paper_headline(),
        6,
        PatternSet::Standard,
    )
    .run(&mut h2);
    let m_reach = ProfileMetrics::evaluate(&reach.profile, &truth);

    assert!(
        m_reach.coverage > m_brute.coverage,
        "reach {:.3} vs brute {:.3}",
        m_reach.coverage,
        m_brute.coverage
    );
    assert!(m_reach.coverage > 0.95, "reach coverage {:.3}", m_reach.coverage);
    assert!(m_reach.false_positive_rate > m_brute.false_positive_rate);
}

#[test]
fn raidr_bins_never_under_refresh_profiled_rows() {
    let chip = chip();
    let geometry = chip.config().geometry;
    let mut harness = TestHarness::new(chip, Celsius::new(45.0), 3);

    // Profile at two intervals to build two retention bins.
    let t_fast = TargetConditions::new(Ms::new(512.0), Celsius::new(45.0));
    let t_slow = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let p_fast = Profiler::brute_force(t_fast, 4, PatternSet::Standard)
        .run(&mut harness)
        .profile;
    let p_slow = Profiler::brute_force(t_slow, 4, PatternSet::Standard)
        .run(&mut harness)
        .profile;

    let raidr = Raidr::build(
        geometry,
        &[(Ms::new(512.0), &p_fast), (Ms::new(1024.0), &p_slow)],
        Ms::new(2048.0),
    );
    // Every cell found failing at 512ms gets at most a 256ms row interval.
    for cell in p_fast.iter() {
        let row = cell / geometry.row_bits() as u64;
        assert!(raidr.refresh_interval_for_row(row) <= Ms::new(256.0));
    }
    // And substantial refresh savings remain vs the 64ms baseline.
    assert!(raidr.refresh_savings_vs_64ms() > 0.9);
}

#[test]
fn row_mapout_consumes_spares_proportionally_to_fpr() {
    let chip = chip();
    let geometry = chip.config().geometry;
    let mut h1 = TestHarness::new(chip.clone(), target().ambient, 4);
    let brute = Profiler::brute_force(target(), 4, PatternSet::Standard)
        .run(&mut h1)
        .profile;
    let mut h2 = TestHarness::new(chip, target().ambient, 4);
    let reach = Profiler::reach(
        target(),
        ReachConditions::new(Ms::new(750.0), 0.0),
        4,
        PatternSet::Standard,
    )
    .run(&mut h2)
    .profile;

    let mut remapper = RowRemapper::new(geometry, geometry.total_rows() / 4);
    remapper.install_profile(&brute).unwrap();
    let spares_brute = remapper.mapped_count();
    remapper.install_profile(&reach).unwrap();
    let spares_reach = remapper.mapped_count();
    // Aggressive reach burns more spares — the §6.1.2 cost of false
    // positives for FPR-intolerant mechanisms.
    assert!(
        spares_reach > spares_brute,
        "brute {spares_brute} vs reach {spares_reach}"
    );
}
