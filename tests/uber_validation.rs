//! Integration: the Eq. 6 analytic UBER model against Monte-Carlo error
//! injection through the *real* SECDED codec — the analysis, core, and
//! mitigation crates must agree with each other.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reaper::core::ecc::EccStrength;
use reaper::mitigation::bch::{Bch2, BchOutcome};
use reaper::mitigation::secded::{DecodeOutcome, Secded};

#[test]
fn analytic_uber_matches_monte_carlo_injection() {
    // At RBER = 6e-3, a 72-bit word sees ≥2 errors often enough to sample.
    let rber = 6e-3;
    let ecc = EccStrength::secded();
    let analytic_word_failure = ecc.uber(rber) * 72.0; // Eq. 2 unnormalized

    let mut rng = StdRng::seed_from_u64(0xECC2);
    let trials = 200_000u32;
    let mut uncorrectable = 0u32;
    let mut miscorrected = 0u32;
    for t in 0..trials {
        let data = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut cw = Secded::encode(data);
        let mut flips = 0;
        for bit in 0..72u32 {
            if rng.random::<f64>() < rber {
                cw = cw.flip(bit);
                flips += 1;
            }
        }
        match Secded::decode(cw) {
            DecodeOutcome::Clean(d) | DecodeOutcome::Corrected(d, _) => {
                if d != data {
                    // >2 flips can alias to a "correctable" syndrome and
                    // miscorrect — count as uncorrectable-equivalent.
                    miscorrected += 1;
                } else if flips > 1 {
                    // Correct data back out of ≥2 flips would violate
                    // SECDED's distance; flag loudly.
                    panic!("impossible: {flips} flips decoded clean");
                }
            }
            DecodeOutcome::Uncorrectable => uncorrectable += 1,
        }
    }
    let empirical = (uncorrectable + miscorrected) as f64 / trials as f64;
    assert!(
        (empirical / analytic_word_failure - 1.0).abs() < 0.10,
        "empirical word-failure rate {empirical:.5} vs analytic {analytic_word_failure:.5}"
    );
}

#[test]
fn bch2_monte_carlo_matches_analytic_ecc2_model() {
    // The real BCH(127,113,t=2) codec shortened to 78 bits against the
    // Eq. 6 analytic model at the same word size and strength.
    let rber = 2.5e-2;
    let analytic_word_failure = EccStrength::new(78, 2).uber(rber) * 78.0;

    let bch = Bch2::new();
    let mut rng = StdRng::seed_from_u64(0xBC42);
    let trials = 60_000u32;
    let mut failures = 0u32;
    for t in 0..trials {
        let data = (t as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        let mut cw = bch.encode(data);
        for bit in 0..78u32 {
            if rng.random::<f64>() < rber {
                cw = cw.flip(bit);
            }
        }
        match bch.decode(cw) {
            BchOutcome::Clean(d) | BchOutcome::Corrected(d, _) => {
                if d != data {
                    failures += 1;
                }
            }
            BchOutcome::Uncorrectable => failures += 1,
        }
    }
    let empirical = failures as f64 / trials as f64;
    assert!(
        (empirical / analytic_word_failure - 1.0).abs() < 0.12,
        "empirical {empirical:.5} vs analytic {analytic_word_failure:.5}"
    );
}

#[test]
fn no_ecc_uber_matches_single_bit_model() {
    // k = 0: any flip is fatal. P[word failure] = 1 - (1-R)^64.
    let rber = 1e-3;
    let ecc = EccStrength::none();
    let analytic = ecc.uber(rber) * 64.0;
    // Direct binomial identity rather than simulation.
    let expected = 1.0 - (1.0 - rber).powi(64);
    assert!(
        (analytic - expected).abs() / expected < 1e-9,
        "{analytic} vs {expected}"
    );
}
