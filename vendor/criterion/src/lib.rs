//! Offline stand-in for the [`criterion`] crate, version 0.5 API surface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this functional replacement. Benches compile and run under
//! `cargo bench`, timing each benchmark with a fixed-duration sampling
//! loop and printing `ns/iter` to stdout. No statistics engine, HTML
//! reports, or CLI filtering — just honest wall-clock measurement of the
//! same closures the upstream crate would run.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching upstream's `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs once per measured iteration, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Accumulated measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Target number of timed iterations for this run.
    target_iters: u64,
}

impl Bencher {
    fn new(target_iters: u64) -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iters += 1;
            hint::black_box(&out);
        }
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.iters += 1;
            hint::black_box(&out);
        }
    }

    /// Like [`Bencher::iter_batched`]; the distinction doesn't matter for
    /// this stand-in because setup always runs outside the timer.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.target_iters {
            let mut input = setup();
            let start = Instant::now();
            let out = routine(&mut input);
            self.elapsed += start.elapsed();
            self.iters += 1;
            hint::black_box(&out);
        }
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.iters == 0 {
        println!("bench {name:<50} (no iterations)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!(
        "bench {name:<50} {:>14.0} ns/iter ({} iters)",
        ns_per_iter, b.iters
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples with adaptive iteration counts;
        // this stand-in uses a small fixed count to keep `cargo bench`
        // turnaround reasonable for heavyweight harness benches.
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default iteration count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(None, id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Upstream parses CLI args here; this stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints a summary here; nothing to do.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_iterations() {
        let mut c = Criterion::default().sample_size(7);
        let mut calls = 0u64;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 7);
    }

    #[test]
    fn groups_respect_sample_size_and_batched_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |_| runs += 1,
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &5u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
