//! Offline stand-in for the [`proptest`] crate, version 1.x API surface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this functional replacement. It keeps the parts the REAPER
//! test suites use:
//!
//! * the [`proptest!`] macro with `#[test] fn name(x in strategy, y: Type)`
//!   parameter forms and an optional `#![proptest_config(...)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map`, range strategies for the
//!   numeric primitives, tuple strategies up to arity 6,
//! * [`arbitrary::any`] / [`arbitrary::Arbitrary`] for the primitives,
//! * [`collection`]: `vec`, `hash_set`, `btree_set`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs via the assertion message), and case generation is
//! deterministic per test name (override count with `PROPTEST_CASES`).
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod test_runner {
    //! Deterministic generation source for property tests.

    /// SplitMix64-based RNG used to drive strategies. Deterministic per
    /// seed; quality is ample for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from an arbitrary label (e.g. the test path),
        /// so every test gets an independent, reproducible stream.
        pub fn for_test(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Seeds directly from a `u64`.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (n as u128);
                let lo = m as u64;
                if lo < n {
                    let threshold = n.wrapping_neg() % n;
                    if lo < threshold {
                        continue;
                    }
                }
                return (m >> 64) as u64;
            }
        }
    }

    /// Per-test configuration. Only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Wide but finite: sign * mantissa * 2^[-64, 64).
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            let exp = rng.below(128) as i32 - 64;
            sign * rng.next_f64() * (2.0f64).powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::hash::Hash;
    use core::ops::Range;
    use std::collections::{BTreeSet, HashSet};

    /// Length specifications accepted by the collection strategies.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet`; duplicates shrink the realized size, as in
    /// upstream proptest.
    pub struct HashSetStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for HashSetStrategy<S, L>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy.
    pub fn hash_set<S: Strategy, L: SizeRange>(element: S, size: L) -> HashSetStrategy<S, L> {
        HashSetStrategy { element, size }
    }

    /// Strategy for `BTreeSet`; duplicates shrink the realized size.
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy.
    pub fn btree_set<S: Strategy, L: SizeRange>(element: S, size: L) -> BTreeSetStrategy<S, L> {
        BTreeSetStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::ProptestConfig;

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header and `#[test] fn name(params) { .. }`
/// items whose parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                $crate::__proptest_bind! { (__rng) $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:ident) ) => {};
    ( ($rng:ident) $name:ident in $strat:expr ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ( ($rng:ident) $name:ident in $strat:expr, $($rest:tt)* ) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
    ( ($rng:ident) $name:ident : $ty:ty ) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ( ($rng:ident) $name:ident : $ty:ty, $($rest:tt)* ) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current generated case when `cond` is false.
///
/// Expands to `continue`, so it is only valid directly inside a
/// [`proptest!`] body (the per-case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_seed(2);
        let strat = (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) * 10 + b as u16);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v / 10 < 4 && v % 10 < 4);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let v = crate::collection::vec(0u64..100, 1..20).generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            let s = crate::collection::hash_set(any::<u64>(), 1..20).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 20);
            let b = crate::collection::btree_set(0u64..1000, 2..10).generate(&mut rng);
            assert!(!b.is_empty() && b.len() < 10);
        }
    }

    proptest! {
        #[test]
        fn macro_binds_both_forms(x in 0u64..10, flag: bool, y in -1.0..1.0f64) {
            prop_assume!(x > 0);
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn macro_honors_config(v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty());
        }
    }
}
