//! Offline stand-in for the [`rand`] crate, version 0.9 API surface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this functional replacement instead of the upstream crate. It
//! implements the exact subset the REAPER workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits with the same names,
//!   signatures, and autoref behavior (`rng.random()` works through
//!   `&mut R` where `R: Rng + ?Sized`),
//! * [`rngs::StdRng`] — deterministic, seedable, high-quality
//!   (xoshiro256++ seeded via SplitMix64, the reference seeding scheme),
//! * `Rng::random::<T>()` for the primitive types, `Rng::random_range`
//!   over integer and float ranges (Lemire-style unbiased integers),
//!   and `Rng::random_bool`.
//!
//! Streams are **not** bit-compatible with upstream `rand` (which uses
//! ChaCha12 for `StdRng`); every consumer in this workspace only relies on
//! determinism-in-seed and statistical quality, both of which hold.
//!
//! [`rand`]: https://crates.io/crates/rand

use core::ops::{Range, RangeInclusive};

/// SplitMix64 step: the standard seeding generator (Steele et al.,
/// "Fast splittable pseudorandom number generators").
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" uniform distribution
/// (full integer range, `[0, 1)` floats, fair-coin bool).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// 53 uniform mantissa bits mapped onto `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// 24 uniform mantissa bits mapped onto `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased uniform integer below `n` (n > 0): Lemire's multiply-shift
/// method with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Range types samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_is_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let x = rng.random_range(0..10u64);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
        // Signed and inclusive ranges.
        for _ in 0..1000 {
            let x = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&x));
            let y = rng.random_range(3..=3u8);
            assert_eq!(y, 3);
            let z = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
